//! The textual pattern language: the parsing front door for user queries.
//!
//! A service counting patterns for arbitrary callers cannot ask them to link
//! against `catalog::*` constructors or hand-number edge tuples. This module
//! gives queries a compact, human-writable text form:
//!
//! ```text
//! pattern   := generator | name | terms
//! generator := ident '(' integer ')'     cycle(5) path(4) star(6) clique(3) binary_tree(3)
//! name      := ident                     a registry name: glet1, brain2, satellite, …
//! terms     := term (',' term)*
//! term      := node ('-' node)*          a chain: a-b-c adds edges a-b and b-c
//! node      := integer | ident
//! ```
//!
//! Nodes are either *all numeric* (`0-1, 1-2, 2-0` — numbers are node
//! indices, the node count is the largest index plus one) or *all named*
//! (`a-b, b-c, c-a` — names are case-sensitive labels, indexed in order of
//! first appearance); mixing the two styles in one pattern is rejected so a
//! label can never silently collide with an index. A bare node term declares
//! an isolated node. Whitespace is free around every token.
//!
//! Parsing never panics: every malformed input is reported as a
//! [`PatternParseError`] carrying the byte [`span`](PatternParseError::span)
//! of the offending token and rendering a caret diagnostic:
//!
//! ```text
//! error: self loop on node `b`
//!   |
//!   | a-b, b-b
//!   |      ^^^
//! ```
//!
//! [`Pattern::parse`] resolves bare names against the built-in
//! [`Registry`]; [`Pattern::parse_with`] takes any registry, which is how
//! runtime-registered patterns become addressable by name.
//!
//! ```
//! use sgc_query::{catalog, Pattern};
//!
//! // The same query three ways: catalog constructor, generator, edge list.
//! let built = catalog::cycle(5);
//! assert_eq!(*Pattern::parse("cycle(5)").unwrap(), built);
//! assert_eq!(*Pattern::parse("0-1-2-3-4-0").unwrap(), built);
//!
//! // Errors are spanned, never panics.
//! let err = Pattern::parse("cycle(2)").unwrap_err();
//! assert_eq!(err.span(), 6..7);
//! ```

use crate::error::QueryError;
use crate::graph::{QueryGraph, QueryNode, MAX_QUERY_NODES};
use crate::registry::Registry;
use std::ops::Range;

/// What went wrong while parsing a pattern; the machine-readable half of a
/// [`PatternParseError`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternErrorKind {
    /// The pattern is empty (or all whitespace).
    Empty,
    /// A character outside the language (anything but identifiers, numbers,
    /// `-`, `,`, parentheses and whitespace).
    UnexpectedChar {
        /// The offending character.
        found: char,
    },
    /// A well-formed token in the wrong place.
    UnexpectedToken {
        /// The offending token's text.
        found: String,
        /// What the parser was looking for instead.
        expected: &'static str,
    },
    /// A bare identifier that is neither a generator nor a registered name.
    UnknownName {
        /// The unresolved name.
        name: String,
        /// Every name the consulted registry would have accepted.
        known: Vec<String>,
    },
    /// A `name(arg)` call whose name is not a generator.
    UnknownGenerator {
        /// The unresolved generator name.
        name: String,
    },
    /// A generator argument outside the generator's supported range.
    GeneratorArg {
        /// The generator's name.
        name: &'static str,
        /// Why the argument was rejected.
        reason: String,
    },
    /// Named and numeric nodes mixed in one pattern.
    MixedNodeStyles,
    /// A numeric node index too large for the signature width.
    NodeIndexTooLarge {
        /// The index as written.
        index: String,
        /// Largest usable index (`MAX_QUERY_NODES - 1`).
        max: usize,
    },
    /// More distinct named nodes than the signature width supports.
    TooManyNodes {
        /// Number of distinct nodes seen so far.
        nodes: usize,
        /// Maximum supported node count.
        max: usize,
    },
    /// An edge from a node to itself.
    SelfLoop {
        /// The node, as written in the pattern.
        node: String,
    },
    /// The same edge written twice (in either direction).
    DuplicateEdge {
        /// One endpoint, as written in the pattern.
        a: String,
        /// The other endpoint, as written in the pattern.
        b: String,
    },
}

/// A spanned pattern-parse failure.
///
/// Carries the [`kind`](PatternParseError::kind), the byte
/// [`span`](PatternParseError::span) of the offending token in the original
/// text, and the text itself; [`Display`](std::fmt::Display) renders the
/// full caret diagnostic (see the [module docs](self) for the shape).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternParseError {
    kind: PatternErrorKind,
    span: Range<usize>,
    text: String,
}

impl PatternParseError {
    fn new(kind: PatternErrorKind, span: Range<usize>, text: &str) -> Self {
        PatternParseError {
            kind,
            span,
            text: text.to_string(),
        }
    }

    /// The machine-readable failure reason.
    pub fn kind(&self) -> &PatternErrorKind {
        &self.kind
    }

    /// Byte range of the offending token in [`pattern`](Self::pattern).
    pub fn span(&self) -> Range<usize> {
        self.span.clone()
    }

    /// The pattern text that failed to parse.
    pub fn pattern(&self) -> &str {
        &self.text
    }

    /// The one-line human-readable message (no caret rendering).
    pub fn message(&self) -> String {
        match &self.kind {
            PatternErrorKind::Empty => "empty pattern".to_string(),
            PatternErrorKind::UnexpectedChar { found } => {
                format!("unexpected character `{found}`")
            }
            PatternErrorKind::UnexpectedToken { found, expected } => {
                format!("expected {expected}, found `{found}`")
            }
            PatternErrorKind::UnknownName { name, known } => {
                if known.is_empty() {
                    format!("unknown pattern name `{name}` (the registry is empty)")
                } else {
                    format!(
                        "unknown pattern name `{name}` (known names: {})",
                        known.join(", ")
                    )
                }
            }
            PatternErrorKind::UnknownGenerator { name } => format!(
                "unknown generator `{name}` (generators: {})",
                GENERATOR_NAMES.join(", ")
            ),
            PatternErrorKind::GeneratorArg { name, reason } => {
                format!("bad argument to `{name}`: {reason}")
            }
            PatternErrorKind::MixedNodeStyles => {
                "pattern mixes named and numeric nodes; use one style throughout".to_string()
            }
            PatternErrorKind::NodeIndexTooLarge { index, max } => {
                format!("node index {index} exceeds the largest supported index {max}")
            }
            PatternErrorKind::TooManyNodes { nodes, max } => {
                format!("pattern uses {nodes} distinct nodes, more than the supported {max}")
            }
            PatternErrorKind::SelfLoop { node } => format!("self loop on node `{node}`"),
            PatternErrorKind::DuplicateEdge { a, b } => {
                format!("edge `{a}-{b}` appears more than once")
            }
        }
    }

    /// The rendered caret diagnostic: the message, the line of the pattern
    /// containing the error, and a `^^^` marker under the offending span.
    pub fn diagnostic(&self) -> String {
        let mut out = format!("error: {}", self.message());
        // Locate the line holding the span start (patterns are usually one
        // line, but whitespace — including newlines — is legal anywhere).
        let start = self.span.start.min(self.text.len());
        let line_start = self.text[..start].rfind('\n').map_or(0, |p| p + 1);
        let line_end = self.text[line_start..]
            .find('\n')
            .map_or(self.text.len(), |p| line_start + p);
        let line = &self.text[line_start..line_end];
        let col = self.text[line_start..start].chars().count();
        let marked = self.span.end.min(line_end).saturating_sub(start);
        let carets = self.text[start..start + marked].chars().count().max(1);
        out.push_str("\n  |");
        out.push_str(&format!("\n  | {line}"));
        out.push_str(&format!("\n  | {}{}", " ".repeat(col), "^".repeat(carets)));
        out
    }
}

impl std::fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.diagnostic())
    }
}

impl std::error::Error for PatternParseError {}

/// A parsed pattern: the [`QueryGraph`] plus the text it came from.
///
/// Obtained from [`Pattern::parse`] / [`Pattern::parse_with`] (or
/// [`Pattern::from_query`] for programmatically built queries, which renders
/// the canonical text). Dereferences to the underlying [`QueryGraph`], so a
/// `&Pattern` goes anywhere a `&QueryGraph` does — including
/// `engine.count(&pattern)` and `engine.explain(&pattern)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pattern {
    query: QueryGraph,
    text: String,
}

impl Pattern {
    /// Parses `text`, resolving bare names against the built-in
    /// [`Registry`].
    ///
    /// # Errors
    /// A spanned [`PatternParseError`]; parsing never panics.
    pub fn parse(text: &str) -> Result<Self, PatternParseError> {
        Pattern::parse_with(Registry::builtin(), text)
    }

    /// Parses `text`, resolving bare names against `registry`.
    ///
    /// # Errors
    /// A spanned [`PatternParseError`]; parsing never panics.
    pub fn parse_with(registry: &Registry, text: &str) -> Result<Self, PatternParseError> {
        let query = parse_query(registry, text)?;
        Ok(Pattern {
            query,
            text: text.to_string(),
        })
    }

    /// Wraps a programmatically built query, rendering its canonical text
    /// form (see [`QueryGraph`]'s `Display`).
    pub fn from_query(query: QueryGraph) -> Self {
        Pattern {
            text: query.to_string(),
            query,
        }
    }

    /// The parsed query graph.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }

    /// Consumes the pattern, returning the query graph.
    pub fn into_query(self) -> QueryGraph {
        self.query
    }

    /// The source text the pattern was parsed from (or the canonical render
    /// for [`from_query`](Pattern::from_query) patterns).
    pub fn text(&self) -> &str {
        &self.text
    }
}

impl std::ops::Deref for Pattern {
    type Target = QueryGraph;

    fn deref(&self) -> &QueryGraph {
        &self.query
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl std::str::FromStr for Pattern {
    type Err = PatternParseError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        Pattern::parse(text)
    }
}

/// The generator macros the parser accepts, for diagnostics.
const GENERATOR_NAMES: &[&str] = &["cycle", "path", "star", "clique", "binary_tree"];

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Ident(String),
    Int(String),
    Dash,
    Comma,
    LParen,
    RParen,
}

impl Token {
    fn text(&self) -> String {
        match self {
            Token::Ident(s) | Token::Int(s) => s.clone(),
            Token::Dash => "-".to_string(),
            Token::Comma => ",".to_string(),
            Token::LParen => "(".to_string(),
            Token::RParen => ")".to_string(),
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<(Token, Range<usize>)>, PatternParseError> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        match bytes[i] {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' => {
                tokens.push((Token::Dash, start..start + 1));
                i += 1;
            }
            b',' => {
                tokens.push((Token::Comma, start..start + 1));
                i += 1;
            }
            b'(' => {
                tokens.push((Token::LParen, start..start + 1));
                i += 1;
            }
            b')' => {
                tokens.push((Token::RParen, start..start + 1));
                i += 1;
            }
            b'0'..=b'9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                tokens.push((Token::Int(text[start..i].to_string()), start..i));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push((Token::Ident(text[start..i].to_string()), start..i));
            }
            _ => {
                let found = text[start..].chars().next().expect("in-bounds offset");
                return Err(PatternParseError::new(
                    PatternErrorKind::UnexpectedChar { found },
                    start..start + found.len_utf8(),
                    text,
                ));
            }
        }
    }
    Ok(tokens)
}

/// Parses the pattern language into a [`QueryGraph`]; the engine behind
/// [`Pattern::parse_with`] and `QueryGraph`'s `FromStr`.
fn parse_query(registry: &Registry, text: &str) -> Result<QueryGraph, PatternParseError> {
    let tokens = tokenize(text)?;
    if tokens.is_empty() {
        return Err(PatternParseError::new(
            PatternErrorKind::Empty,
            0..text.len(),
            text,
        ));
    }
    // `ident ( … )` is a generator call; a lone `ident` is a registry name.
    if let (Token::Ident(name), name_span) = &tokens[0] {
        if matches!(tokens.get(1), Some((Token::LParen, _))) {
            return parse_generator(text, &tokens, name, name_span.clone());
        }
        if tokens.len() == 1 {
            return registry.build(name).ok_or_else(|| {
                PatternParseError::new(
                    PatternErrorKind::UnknownName {
                        name: name.clone(),
                        known: registry.names().iter().map(|n| n.to_string()).collect(),
                    },
                    name_span.clone(),
                    text,
                )
            });
        }
    }
    parse_edge_terms(text, &tokens)
}

fn parse_generator(
    text: &str,
    tokens: &[(Token, Range<usize>)],
    name: &str,
    name_span: Range<usize>,
) -> Result<QueryGraph, PatternParseError> {
    let expect = |index: usize, want: &Token, expected: &'static str| match tokens.get(index) {
        Some((token, span)) if token == want => Ok(span.clone()),
        Some((token, span)) => Err(PatternParseError::new(
            PatternErrorKind::UnexpectedToken {
                found: token.text(),
                expected,
            },
            span.clone(),
            text,
        )),
        None => Err(PatternParseError::new(
            PatternErrorKind::UnexpectedToken {
                found: "end of pattern".to_string(),
                expected,
            },
            text.len()..text.len(),
            text,
        )),
    };
    expect(1, &Token::LParen, "`(`")?;
    let (arg, arg_span) = match tokens.get(2) {
        Some((Token::Int(digits), span)) => (digits.clone(), span.clone()),
        Some((token, span)) => {
            return Err(PatternParseError::new(
                PatternErrorKind::UnexpectedToken {
                    found: token.text(),
                    expected: "an integer argument",
                },
                span.clone(),
                text,
            ))
        }
        None => {
            return Err(PatternParseError::new(
                PatternErrorKind::UnexpectedToken {
                    found: "end of pattern".to_string(),
                    expected: "an integer argument",
                },
                text.len()..text.len(),
                text,
            ))
        }
    };
    expect(3, &Token::RParen, "`)`")?;
    if let Some((token, span)) = tokens.get(4) {
        return Err(PatternParseError::new(
            PatternErrorKind::UnexpectedToken {
                found: token.text(),
                expected: "end of pattern after the generator call",
            },
            span.clone(),
            text,
        ));
    }

    // Resolve the generator name case-insensitively and range-check the
    // argument before delegating to the catalog constructors (whose
    // preconditions would otherwise panic).
    let lower = name.to_ascii_lowercase();
    let gen_error = |reason: String| {
        PatternParseError::new(
            PatternErrorKind::GeneratorArg {
                name: GENERATOR_NAMES
                    .iter()
                    .find(|g| **g == lower)
                    .expect("checked generator name"),
                reason,
            },
            arg_span.clone(),
            text,
        )
    };
    if !GENERATOR_NAMES.contains(&lower.as_str()) {
        return Err(PatternParseError::new(
            PatternErrorKind::UnknownGenerator {
                name: name.to_string(),
            },
            name_span,
            text,
        ));
    }
    let n: usize = arg
        .parse()
        .map_err(|_| gen_error(format!("`{arg}` is not a representable size")))?;
    let max = MAX_QUERY_NODES;
    match lower.as_str() {
        "cycle" => {
            if !(3..=max).contains(&n) {
                return Err(gen_error(format!(
                    "cycle size must be in 3..={max}, got {n}"
                )));
            }
            Ok(crate::catalog::cycle(n))
        }
        "path" => {
            if !(1..=max).contains(&n) {
                return Err(gen_error(format!(
                    "path size must be in 1..={max}, got {n}"
                )));
            }
            Ok(crate::catalog::path(n))
        }
        "star" => {
            if !(1..=max - 1).contains(&n) {
                return Err(gen_error(format!(
                    "star leaf count must be in 1..={}, got {n}",
                    max - 1
                )));
            }
            Ok(crate::catalog::star(n))
        }
        "clique" => {
            if !(1..=max).contains(&n) {
                return Err(gen_error(format!(
                    "clique size must be in 1..={max}, got {n}"
                )));
            }
            Ok(crate::catalog::clique(n))
        }
        "binary_tree" => {
            if !(1..=5).contains(&n) {
                return Err(gen_error(format!(
                    "binary_tree levels must be in 1..=5, got {n}"
                )));
            }
            Ok(crate::catalog::binary_tree(n))
        }
        _ => unreachable!("generator membership checked above"),
    }
}

/// Node-label bookkeeping for one edge-term pattern: either literal numeric
/// indices or named labels indexed by first appearance.
enum NodeStyle {
    Undecided,
    Numeric { max_index: QueryNode },
    Named { labels: Vec<String> },
}

impl NodeStyle {
    fn resolve(
        &mut self,
        token: &Token,
        span: &Range<usize>,
        text: &str,
    ) -> Result<QueryNode, PatternParseError> {
        match token {
            Token::Int(digits) => {
                if matches!(self, NodeStyle::Named { .. }) {
                    return Err(PatternParseError::new(
                        PatternErrorKind::MixedNodeStyles,
                        span.clone(),
                        text,
                    ));
                }
                let index: usize = digits.parse().unwrap_or(usize::MAX);
                if index >= MAX_QUERY_NODES {
                    return Err(PatternParseError::new(
                        PatternErrorKind::NodeIndexTooLarge {
                            index: digits.clone(),
                            max: MAX_QUERY_NODES - 1,
                        },
                        span.clone(),
                        text,
                    ));
                }
                let index = index as QueryNode;
                match self {
                    NodeStyle::Numeric { max_index } => *max_index = (*max_index).max(index),
                    _ => *self = NodeStyle::Numeric { max_index: index },
                }
                Ok(index)
            }
            Token::Ident(label) => {
                if matches!(self, NodeStyle::Numeric { .. }) {
                    return Err(PatternParseError::new(
                        PatternErrorKind::MixedNodeStyles,
                        span.clone(),
                        text,
                    ));
                }
                if matches!(self, NodeStyle::Undecided) {
                    *self = NodeStyle::Named { labels: Vec::new() };
                }
                let NodeStyle::Named { labels } = self else {
                    unreachable!("style set to Named above")
                };
                if let Some(index) = labels.iter().position(|l| l == label) {
                    return Ok(index as QueryNode);
                }
                if labels.len() >= MAX_QUERY_NODES {
                    return Err(PatternParseError::new(
                        PatternErrorKind::TooManyNodes {
                            nodes: labels.len() + 1,
                            max: MAX_QUERY_NODES,
                        },
                        span.clone(),
                        text,
                    ));
                }
                labels.push(label.clone());
                Ok((labels.len() - 1) as QueryNode)
            }
            _ => Err(PatternParseError::new(
                PatternErrorKind::UnexpectedToken {
                    found: token.text(),
                    expected: "a node (a number or a name)",
                },
                span.clone(),
                text,
            )),
        }
    }

    /// The label a node renders under in diagnostics.
    fn label(&self, node: QueryNode) -> String {
        match self {
            NodeStyle::Named { labels } => labels[node as usize].clone(),
            _ => node.to_string(),
        }
    }
}

fn parse_edge_terms(
    text: &str,
    tokens: &[(Token, Range<usize>)],
) -> Result<QueryGraph, PatternParseError> {
    let mut style = NodeStyle::Undecided;
    // (a, b, span of the `a-…-b` step) for edges. A bare node term adds no
    // edge; resolving it is enough to declare it (the style tracks every
    // node seen).
    let mut edges: Vec<(QueryNode, QueryNode, Range<usize>)> = Vec::new();

    let mut i = 0;
    while i < tokens.len() {
        // One term: node ('-' node)*
        let (first_token, first_span) = &tokens[i];
        let mut prev = style.resolve(first_token, first_span, text)?;
        let mut prev_span = first_span.clone();
        i += 1;
        while matches!(tokens.get(i), Some((Token::Dash, _))) {
            i += 1;
            let Some((node_token, node_span)) = tokens.get(i) else {
                return Err(PatternParseError::new(
                    PatternErrorKind::UnexpectedToken {
                        found: "end of pattern".to_string(),
                        expected: "a node after `-`",
                    },
                    text.len()..text.len(),
                    text,
                ));
            };
            let next = style.resolve(node_token, node_span, text)?;
            let step_span = prev_span.start..node_span.end;
            edges.push((prev, next, step_span));
            prev = next;
            prev_span = node_span.clone();
            i += 1;
        }
        match tokens.get(i) {
            None => {}
            Some((Token::Comma, _)) => i += 1,
            Some((token, span)) => {
                return Err(PatternParseError::new(
                    PatternErrorKind::UnexpectedToken {
                        found: token.text(),
                        expected: "`-`, `,` or end of pattern",
                    },
                    span.clone(),
                    text,
                ))
            }
        }
    }

    let num_nodes = match &style {
        NodeStyle::Undecided => unreachable!("token list is non-empty"),
        NodeStyle::Numeric { max_index } => *max_index as usize + 1,
        NodeStyle::Named { labels } => labels.len(),
    };
    let mut query = QueryGraph::new(num_nodes);
    for (a, b, span) in edges {
        query.add_edge(a, b).map_err(|e| {
            let kind = match e {
                QueryError::SelfLoop { node } => PatternErrorKind::SelfLoop {
                    node: style.label(node),
                },
                QueryError::DuplicateEdge { a, b } => PatternErrorKind::DuplicateEdge {
                    a: style.label(a),
                    b: style.label(b),
                },
                // `new(num_nodes)` covers every resolved index, so no other
                // add_edge error is reachable from the parser.
                other => unreachable!("unexpected add_edge error from parser: {other}"),
            };
            PatternParseError::new(kind, span, text)
        })?;
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn numeric_and_named_edge_lists_parse() {
        let numeric = Pattern::parse("0-1, 1-2, 2-0").unwrap();
        assert_eq!(*numeric, catalog::triangle());
        let named = Pattern::parse("a-b, b-c, c-a").unwrap();
        assert_eq!(*named, catalog::triangle());
        assert_eq!(named.text(), "a-b, b-c, c-a");
    }

    #[test]
    fn chains_expand_to_consecutive_edges() {
        assert_eq!(*Pattern::parse("a-b-c-a").unwrap(), catalog::triangle());
        assert_eq!(*Pattern::parse("0-1-2-3").unwrap(), catalog::path(4));
        // The paper's house graphlet as one chain plus a closing edge.
        assert_eq!(
            *Pattern::parse("a-b-c-d-a, c-e-d").unwrap(),
            catalog::glet1()
        );
    }

    #[test]
    fn generators_match_their_constructors() {
        assert_eq!(*Pattern::parse("cycle(5)").unwrap(), catalog::cycle(5));
        assert_eq!(*Pattern::parse("path(4)").unwrap(), catalog::path(4));
        assert_eq!(*Pattern::parse("star(6)").unwrap(), catalog::star(6));
        assert_eq!(*Pattern::parse("clique(3)").unwrap(), catalog::clique(3));
        assert_eq!(
            *Pattern::parse("binary_tree(3)").unwrap(),
            catalog::binary_tree(3)
        );
        // Case-insensitive, whitespace-tolerant.
        assert_eq!(
            *Pattern::parse("  Cycle ( 5 ) ").unwrap(),
            catalog::cycle(5)
        );
    }

    #[test]
    fn registry_names_resolve_case_insensitively() {
        assert_eq!(*Pattern::parse("glet1").unwrap(), catalog::glet1());
        assert_eq!(*Pattern::parse("BRAIN2").unwrap(), catalog::brain2());
        assert_eq!(*Pattern::parse("satellite").unwrap(), catalog::satellite());
    }

    #[test]
    fn parse_with_resolves_runtime_registrations() {
        let mut registry = Registry::with_catalog();
        registry
            .register("mytriangle", "a test alias", catalog::triangle())
            .unwrap();
        assert_eq!(
            *Pattern::parse_with(&registry, "mytriangle").unwrap(),
            catalog::triangle()
        );
        // The builtin registry is unaffected.
        let err = Pattern::parse("mytriangle").unwrap_err();
        assert!(matches!(
            err.kind(),
            PatternErrorKind::UnknownName { name, .. } if name == "mytriangle"
        ));
    }

    #[test]
    fn bare_nodes_declare_isolated_nodes() {
        let q = Pattern::parse("0-1, 3").unwrap();
        assert_eq!(q.num_nodes(), 4);
        assert_eq!(q.num_edges(), 1);
        assert_eq!(q.isolated_nodes(), vec![2, 3]);
        let named = Pattern::parse("a-b, c").unwrap();
        assert_eq!(named.num_nodes(), 3);
        assert_eq!(named.isolated_nodes(), vec![2]);
    }

    #[test]
    fn every_error_is_spanned_and_never_a_panic() {
        for (text, expected_span) in [
            ("", 0..0),
            ("   ", 0..3),
            ("a-b, b?c", 6..7),                // unexpected char
            ("a-b c-d", 4..5),                 // missing comma
            ("a-", 2..2),                      // dangling dash
            ("cycle(2)", 6..7),                // bad generator arg
            ("cycle(x)", 6..7),                // non-integer arg
            ("cycle(5", 7..7),                 // missing `)`
            ("cycle(5) extra", 9..14),         // trailing junk
            ("spiral(4)", 0..6),               // unknown generator
            ("glet9", 0..5),                   // unknown name
            ("a-1", 2..3),                     // mixed styles
            ("0-128", 2..5),                   // index too large
            ("a-a", 0..3),                     // self loop
            ("a-b, b-a", 5..8),                // duplicate edge
            ("7-7", 0..3),                     // numeric self loop
            ("99999999999999999999-1", 0..20), // unrepresentable index
        ] {
            let err = Pattern::parse(text).unwrap_err();
            assert_eq!(err.span(), expected_span, "span for {text:?}: {err}");
            assert_eq!(err.pattern(), text);
        }
    }

    #[test]
    fn error_kinds_are_typed() {
        assert!(matches!(
            Pattern::parse("").unwrap_err().kind(),
            PatternErrorKind::Empty
        ));
        assert!(matches!(
            Pattern::parse("a-a").unwrap_err().kind(),
            PatternErrorKind::SelfLoop { node } if node == "a"
        ));
        assert!(matches!(
            Pattern::parse("b-c, c-b").unwrap_err().kind(),
            PatternErrorKind::DuplicateEdge { a, b } if a == "b" && b == "c"
        ));
        assert!(matches!(
            Pattern::parse("1-a").unwrap_err().kind(),
            PatternErrorKind::MixedNodeStyles
        ));
        assert!(matches!(
            Pattern::parse("0-200").unwrap_err().kind(),
            PatternErrorKind::NodeIndexTooLarge { index, max: 127 } if index == "200"
        ));
        match Pattern::parse("glet9").unwrap_err().kind() {
            PatternErrorKind::UnknownName { known, .. } => {
                assert!(known.iter().any(|n| n == "glet1"));
            }
            other => panic!("expected UnknownName, got {other:?}"),
        }
    }

    #[test]
    fn caret_diagnostics_point_at_the_offending_token() {
        let err = Pattern::parse("a-b, b-b").unwrap_err();
        let diagnostic = err.diagnostic();
        let lines: Vec<&str> = diagnostic.lines().collect();
        assert_eq!(lines[0], "error: self loop on node `b`");
        assert_eq!(lines[2], "  | a-b, b-b");
        assert_eq!(lines[3], "  |      ^^^");
        // Display renders the same diagnostic.
        assert_eq!(err.to_string(), diagnostic);
    }

    #[test]
    fn diagnostics_handle_multiline_patterns() {
        let err = Pattern::parse("a-b,\nb-b").unwrap_err();
        let diagnostic = err.diagnostic();
        let lines: Vec<&str> = diagnostic.lines().collect();
        assert_eq!(lines[2], "  | b-b");
        assert_eq!(lines[3], "  | ^^^");
    }

    #[test]
    fn pattern_wraps_and_round_trips_queries() {
        let p = Pattern::from_query(catalog::triangle());
        assert_eq!(p.text(), "0-1, 0-2, 1-2");
        assert_eq!(*Pattern::parse(p.text()).unwrap(), catalog::triangle());
        assert_eq!(p.to_string(), p.text());
        // FromStr round trip on QueryGraph itself.
        let q: QueryGraph = "cycle(4)".parse().unwrap();
        assert_eq!(q, catalog::cycle(4));
        let rendered = q.to_string();
        assert_eq!(rendered.parse::<QueryGraph>().unwrap(), q);
    }

    #[test]
    fn every_builtin_name_parses_to_its_catalog_query() {
        for name in Registry::builtin().names() {
            let by_name = Pattern::parse(name).unwrap();
            let by_catalog = catalog::query_by_name(name).unwrap();
            assert_eq!(*by_name, by_catalog, "{name}");
            // …and the canonical render re-parses to the same query.
            let rendered = by_catalog.to_string();
            assert_eq!(
                rendered.parse::<QueryGraph>().unwrap(),
                by_catalog,
                "render round trip for {name}: {rendered}"
            );
        }
    }
}
