//! Plan enumeration and the plan-selection heuristic (Section 6).
//!
//! A query usually admits several decomposition trees, and the paper reports
//! up to a 13× runtime difference between the best and worst tree for the
//! same graph-query pair. Section 6 observes that the tree can be chosen by
//! looking only at the query, using three factors in decreasing order of
//! importance:
//!
//! 1. the length of the longest cycle block (shorter is better),
//! 2. the total number of boundary nodes (fewer is better),
//! 3. the total number of node/edge annotations (fewer is better).
//!
//! [`enumerate_plans`] produces every distinct decomposition tree (used by the
//! Figure 14 experiment to find the true optimum), and [`heuristic_plan`]
//! implements the paper's selection rule on top of it.

use crate::decomposition::{decompose, Contracted, DecompositionTree};
use crate::error::QueryError;
use crate::graph::QueryGraph;
use crate::treewidth::treewidth_at_most_two;
use std::collections::HashSet;

/// The plan-cost vector of Section 6, compared lexicographically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlanCost {
    /// Length of the longest cycle block.
    pub longest_cycle: usize,
    /// Total number of boundary nodes over all blocks.
    pub boundary_nodes: usize,
    /// Total number of node and edge annotations over all blocks.
    pub annotations: usize,
}

impl PlanCost {
    /// Computes the cost vector of a decomposition tree.
    pub fn of(tree: &DecompositionTree) -> Self {
        PlanCost {
            longest_cycle: tree.longest_cycle(),
            boundary_nodes: tree.total_boundary_nodes(),
            annotations: tree.total_annotations(),
        }
    }
}

/// Upper bound on the number of distinct plans the enumerator will return;
/// a safety valve for adversarial queries (the paper's 10-node queries stay
/// in the tens of plans).
pub const MAX_PLANS: usize = 20_000;

/// Enumerates every distinct decomposition tree of `query`.
///
/// Distinctness is up to the tree's structural [`DecompositionTree::signature`];
/// contraction orders that produce the same tree are merged. Returns an error
/// for invalid queries (empty, disconnected, treewidth > 2).
pub fn enumerate_plans(query: &QueryGraph) -> Result<Vec<DecompositionTree>, QueryError> {
    query.validate()?;
    if !treewidth_at_most_two(query) {
        return Err(QueryError::TreewidthExceeded);
    }
    if query.num_nodes() == 1 {
        return Ok(vec![decompose(query)?]);
    }

    let mut plans = Vec::new();
    let mut seen_plans: HashSet<String> = HashSet::new();
    let mut seen_states: HashSet<String> = HashSet::new();
    let mut stack: Vec<(Contracted, Vec<crate::block::Block>)> =
        vec![(Contracted::new(query), Vec::new())];

    while let Some((state, blocks)) = stack.pop() {
        if plans.len() >= MAX_PLANS {
            break;
        }
        if state.alive_count() <= 1 {
            if let Ok(root) = state.finish(&blocks) {
                let tree = DecompositionTree {
                    query: query.clone(),
                    blocks,
                    root,
                };
                if seen_plans.insert(tree.signature()) {
                    plans.push(tree);
                }
            }
            continue;
        }
        for candidate in state.candidates() {
            let mut next_state = state.clone();
            let mut next_blocks = blocks.clone();
            next_state.contract(&candidate, &mut next_blocks);
            // Merge contraction orders that reach an identical state: the key
            // includes the recursive structure of the blocks referenced by
            // the surviving annotations.
            let sig_tree = DecompositionTree {
                query: query.clone(),
                blocks: next_blocks.clone(),
                root: None,
            };
            let key = next_state.canonical_key(&next_blocks, &|b| sig_tree_signature(&sig_tree, b));
            // Terminal states (0 or 1 alive nodes) may erase the distinguishing
            // annotations (the root is no longer referenced anywhere), so they
            // are never merged — the final plan dedup handles duplicates there.
            if next_state.alive_count() <= 1 || seen_states.insert(key) {
                stack.push((next_state, next_blocks));
            }
        }
    }
    if plans.is_empty() {
        return Err(QueryError::NoBlockFound);
    }
    Ok(plans)
}

fn sig_tree_signature(tree: &DecompositionTree, block: crate::block::BlockId) -> String {
    // DecompositionTree::signature only reports from the root; reuse the same
    // recursive scheme starting from an arbitrary block.
    let mut t = tree.clone();
    t.root = Some(block);
    t.signature()
}

/// Selects a decomposition tree for `query` using the paper's heuristic:
/// enumerate plans and pick the one with the lexicographically smallest
/// [`PlanCost`] (ties broken by signature for determinism).
pub fn heuristic_plan(query: &QueryGraph) -> Result<DecompositionTree, QueryError> {
    let plans = enumerate_plans(query)?;
    Ok(plans
        .into_iter()
        .min_by_key(|t| (PlanCost::of(t), t.signature()))
        .expect("enumerate_plans returned at least one plan"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::QueryNode;

    fn cycle_query(n: usize) -> QueryGraph {
        let mut q = QueryGraph::new(n);
        for i in 0..n {
            q.add_edge(i as QueryNode, ((i + 1) % n) as QueryNode)
                .unwrap();
        }
        q
    }

    /// brain1-style query from the paper's Section 6 discussion: a 4-cycle
    /// and a 6-cycle sharing a single edge; it admits exactly two plans
    /// (contract the 4-cycle first, or the 6-cycle first).
    fn fused_cycles() -> QueryGraph {
        // 6-cycle 0-1-2-3-4-5, 4-cycle 0-1-6-7 sharing edge (0,1).
        QueryGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (1, 6),
                (6, 7),
                (7, 0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn pure_cycle_has_exactly_one_plan() {
        let plans = enumerate_plans(&cycle_query(6)).unwrap();
        assert_eq!(plans.len(), 1);
    }

    #[test]
    fn fused_cycles_admit_two_plans() {
        let plans = enumerate_plans(&fused_cycles()).unwrap();
        assert_eq!(plans.len(), 2, "expected the two orders from Section 6");
        for p in &plans {
            p.verify().unwrap();
        }
        // The two plans differ in which cycle becomes the root.
        let mut root_lengths: Vec<usize> = plans
            .iter()
            .map(|p| p.blocks[p.root.unwrap()].cycle_length())
            .collect();
        root_lengths.sort_unstable();
        assert_eq!(root_lengths, vec![4, 6]);
    }

    #[test]
    fn heuristic_prefers_shorter_longest_cycle() {
        // For the fused-cycles query both plans share the same block lengths
        // {4-cycle, 6-cycle}; the heuristic must still return one of them and
        // be deterministic.
        let a = heuristic_plan(&fused_cycles()).unwrap();
        let b = heuristic_plan(&fused_cycles()).unwrap();
        assert_eq!(a.signature(), b.signature());
        a.verify().unwrap();
    }

    #[test]
    fn plan_costs_are_ordered_lexicographically() {
        let small = PlanCost {
            longest_cycle: 4,
            boundary_nodes: 10,
            annotations: 10,
        };
        let large = PlanCost {
            longest_cycle: 5,
            boundary_nodes: 0,
            annotations: 0,
        };
        assert!(small < large);
    }

    #[test]
    fn every_enumerated_plan_verifies() {
        let q = crate::decomposition::tests::satellite();
        let plans = enumerate_plans(&q).unwrap();
        assert!(!plans.is_empty());
        for p in &plans {
            p.verify().unwrap();
            assert_eq!(p.subquery_nodes(p.root.unwrap()).len(), 11);
        }
        // Signatures are pairwise distinct.
        let sigs: HashSet<String> = plans.iter().map(|p| p.signature()).collect();
        assert_eq!(sigs.len(), plans.len());
    }

    #[test]
    fn tree_queries_have_plans_without_cycles() {
        let mut star = QueryGraph::new(5);
        for leaf in 1..5 {
            star.add_edge(0, leaf).unwrap();
        }
        let plans = enumerate_plans(&star).unwrap();
        for p in &plans {
            assert_eq!(p.longest_cycle(), 0);
            p.verify().unwrap();
        }
        let best = heuristic_plan(&star).unwrap();
        assert_eq!(best.blocks.len(), 4);
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let mut k4 = QueryGraph::new(4);
        for a in 0..4u8 {
            for b in (a + 1)..4 {
                k4.add_edge(a, b).unwrap();
            }
        }
        assert_eq!(enumerate_plans(&k4), Err(QueryError::TreewidthExceeded));
        assert_eq!(heuristic_plan(&QueryGraph::new(0)), Err(QueryError::Empty));
    }
}
