//! The query registry: one name → query resolution path for the whole stack.
//!
//! Historically every layer kept its own list of known queries: the catalog
//! had `FIGURE8_QUERIES` plus a special case for `satellite`, the bench
//! binaries repeated name lists, and anything user-supplied had no name at
//! all. A [`Registry`] unifies this: it maps names to query specs, is
//! enumerable ([`Registry::names`]) and extensible at runtime
//! ([`Registry::register`]), and is what both
//! [`catalog::query_by_name`](crate::catalog::query_by_name()) and the pattern
//! parser's bare-name resolution ([`crate::parse`]) consult.
//!
//! [`Registry::builtin`] is the shared, immutable instance preloaded with
//! the paper's query suite; build your own with [`Registry::with_catalog`]
//! (or [`Registry::new`] for an empty one) when you need to add patterns:
//!
//! ```
//! use sgc_query::{QueryGraph, Registry};
//!
//! let mut registry = Registry::with_catalog();
//! let bowtie = QueryGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
//!     .unwrap();
//! registry
//!     .register("bowtie", "two triangles sharing a node", bowtie.clone())
//!     .unwrap();
//! assert_eq!(registry.build("BOWTIE"), Some(bowtie));
//! assert!(registry.names().len() > Registry::builtin().names().len());
//! ```

use crate::catalog;
use crate::error::QueryError;
use crate::graph::QueryGraph;
use std::sync::OnceLock;

/// One registered query: a name, a short human description, and the query
/// graph itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegistryEntry {
    name: String,
    description: String,
    query: QueryGraph,
}

impl RegistryEntry {
    /// The name the entry resolves under (case-insensitively).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Short structural description of the query.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The registered query graph.
    pub fn query(&self) -> &QueryGraph {
        &self.query
    }
}

/// Reasons a query cannot be registered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is already taken (names are compared case-insensitively).
    DuplicateName {
        /// The conflicting name, as passed to `register`.
        name: String,
    },
    /// The name is empty or not a valid pattern identifier
    /// (`[A-Za-z_][A-Za-z0-9_]*`), so the parser could never resolve it.
    InvalidName {
        /// The rejected name.
        name: String,
    },
    /// The query itself is unusable (empty, disconnected, or too large);
    /// registering it would only defer the failure to every lookup site.
    InvalidQuery {
        /// The rejected name.
        name: String,
        /// Why the query was rejected.
        error: QueryError,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::DuplicateName { name } => {
                write!(f, "a query named `{name}` is already registered")
            }
            RegistryError::InvalidName { name } => write!(
                f,
                "`{name}` is not a valid pattern name (want [A-Za-z_][A-Za-z0-9_]*)"
            ),
            RegistryError::InvalidQuery { name, error } => {
                write!(f, "query `{name}` cannot be registered: {error}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Whether `name` is a valid pattern-language identifier, i.e. something the
/// parser could resolve as a bare name.
pub(crate) fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A name → query registry; see the [module docs](self) for the role it
/// plays and an extension example.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Registry {
    entries: Vec<RegistryEntry>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// A registry preloaded with the paper's query suite: the ten Figure 8
    /// queries plus the `satellite` worked example, in catalog order.
    pub fn with_catalog() -> Self {
        let mut registry = Registry::new();
        for spec in catalog::FIGURE8_QUERIES {
            registry
                .register(spec.name, spec.description, (spec.build)())
                .expect("catalog names are unique and catalog queries are valid");
        }
        registry
            .register(
                "satellite",
                "the paper's Figure 2 worked example (11 nodes)",
                catalog::satellite(),
            )
            .expect("the satellite query is valid");
        registry
    }

    /// The shared built-in registry (the immutable
    /// [`with_catalog`](Registry::with_catalog) instance). This is what
    /// [`catalog::query_by_name`](crate::catalog::query_by_name()) and the
    /// default pattern parser resolve against.
    pub fn builtin() -> &'static Registry {
        static BUILTIN: OnceLock<Registry> = OnceLock::new();
        BUILTIN.get_or_init(Registry::with_catalog)
    }

    /// Registers `query` under `name`.
    ///
    /// # Errors
    /// [`RegistryError::DuplicateName`] if the name is taken (names are
    /// case-insensitive), [`RegistryError::InvalidName`] if the parser could
    /// never resolve it, and [`RegistryError::InvalidQuery`] if the query
    /// fails [`QueryGraph::validate`].
    pub fn register(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        query: QueryGraph,
    ) -> Result<(), RegistryError> {
        let name = name.into();
        if !is_valid_name(&name) {
            return Err(RegistryError::InvalidName { name });
        }
        if self.get(&name).is_some() {
            return Err(RegistryError::DuplicateName { name });
        }
        if let Err(error) = query.validate() {
            return Err(RegistryError::InvalidQuery { name, error });
        }
        self.entries.push(RegistryEntry {
            name,
            description: description.into(),
            query,
        });
        Ok(())
    }

    /// Looks up an entry by name, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&RegistryEntry> {
        self.entries
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
    }

    /// Builds the query registered under `name` (case-insensitively).
    pub fn build(&self, name: &str) -> Option<QueryGraph> {
        self.get(name).map(|e| e.query.clone())
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// Iterator over all entries in registration order.
    pub fn entries(&self) -> impl Iterator<Item = &RegistryEntry> {
        self.entries.iter()
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_the_whole_catalog() {
        let builtin = Registry::builtin();
        assert_eq!(builtin.len(), catalog::FIGURE8_QUERIES.len() + 1);
        for spec in catalog::FIGURE8_QUERIES {
            let entry = builtin.get(spec.name).expect("catalog name registered");
            assert_eq!(entry.query(), &(spec.build)());
            assert_eq!(entry.description(), spec.description);
        }
        assert_eq!(
            builtin.build("satellite").unwrap(),
            catalog::satellite(),
            "the worked example resolves too"
        );
    }

    #[test]
    fn lookup_is_case_insensitive_and_misses_return_none() {
        let builtin = Registry::builtin();
        assert_eq!(builtin.build("BrAiN1"), builtin.build("brain1"));
        assert!(builtin.build("brain1").is_some());
        assert!(builtin.build("nonexistent").is_none());
    }

    #[test]
    fn names_enumerate_in_registration_order() {
        let names = Registry::builtin().names();
        assert_eq!(names.first(), Some(&"dros"));
        assert_eq!(names.last(), Some(&"satellite"));
        assert_eq!(names.len(), Registry::builtin().len());
    }

    #[test]
    fn runtime_registration_and_duplicate_rejection() {
        let mut registry = Registry::with_catalog();
        let before = registry.len();
        registry
            .register("house_alias", "alias of glet1", catalog::glet1())
            .unwrap();
        assert_eq!(registry.len(), before + 1);
        assert_eq!(registry.build("HOUSE_ALIAS"), Some(catalog::glet1()));
        // Case-insensitive duplicate.
        let err = registry
            .register("Glet1", "shadow", catalog::glet2())
            .unwrap_err();
        assert_eq!(
            err,
            RegistryError::DuplicateName {
                name: "Glet1".into()
            }
        );
    }

    #[test]
    fn invalid_names_and_queries_are_rejected() {
        let mut registry = Registry::new();
        for bad in ["", "7up", "a-b", "has space", "paren("] {
            assert_eq!(
                registry.register(bad, "", catalog::triangle()).unwrap_err(),
                RegistryError::InvalidName { name: bad.into() }
            );
        }
        let disconnected = QueryGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            registry.register("disco", "", disconnected).unwrap_err(),
            RegistryError::InvalidQuery {
                error: QueryError::Disconnected,
                ..
            }
        ));
        assert!(registry.is_empty());
    }
}
