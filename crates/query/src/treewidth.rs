//! Treewidth-≤2 recognition.
//!
//! A connected graph has treewidth at most two iff it can be reduced to a
//! single vertex by repeatedly applying the classic series-parallel style
//! reduction rules: delete a vertex of degree ≤ 1, or delete a vertex of
//! degree 2 after connecting its two neighbors (adding the edge if absent).
//! This is the standard linear-time characterisation used for partial
//! 2-trees and matches the class of queries handled by the paper (trees,
//! cycles, series-parallel graphs "and beyond", Section 1).

use crate::graph::{QueryGraph, QueryNode};

/// Returns `true` iff the query has treewidth at most two.
///
/// Works on connected and disconnected graphs alike (each component is
/// reduced independently by the same rule).
pub fn treewidth_at_most_two(query: &QueryGraph) -> bool {
    let n = query.num_nodes();
    if n <= 2 {
        return true;
    }
    // Mutable adjacency copy as bitmasks.
    let mut adj: Vec<u128> = (0..n as QueryNode)
        .map(|a| query.neighbor_mask(a))
        .collect();
    let mut alive: u128 = if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };

    loop {
        let mut progressed = false;
        for a in 0..n {
            if (alive >> a) & 1 == 0 {
                continue;
            }
            let deg = adj[a].count_ones();
            match deg {
                0 | 1 => {
                    remove_vertex(&mut adj, &mut alive, a);
                    progressed = true;
                }
                2 => {
                    let mask = adj[a];
                    let u = mask.trailing_zeros() as usize;
                    let v = (127 - mask.leading_zeros()) as usize;
                    remove_vertex(&mut adj, &mut alive, a);
                    // Connect the two neighbors (series reduction).
                    adj[u] |= 1u128 << v;
                    adj[v] |= 1u128 << u;
                    progressed = true;
                }
                _ => {}
            }
        }
        if alive.count_ones() <= 1 {
            return true;
        }
        if !progressed {
            return false;
        }
    }
}

fn remove_vertex(adj: &mut [u128], alive: &mut u128, a: usize) {
    let mask = adj[a];
    for (b, nbrs) in adj.iter_mut().enumerate() {
        if (mask >> b) & 1 == 1 {
            *nbrs &= !(1u128 << a);
        }
    }
    adj[a] = 0;
    *alive &= !(1u128 << a);
}

/// Returns `true` iff the query is a tree (connected and `m = n - 1`).
pub fn is_tree(query: &QueryGraph) -> bool {
    query.num_nodes() > 0 && query.is_connected() && query.num_edges() == query.num_nodes() - 1
}

/// Returns `true` iff the query is acyclic (a forest).
pub fn is_forest(query: &QueryGraph) -> bool {
    // A graph is a forest iff every connected component has m = n - 1, which
    // for the whole graph means m = n - #components. Use the reduction: a
    // forest reduces to empty by repeatedly deleting degree-≤1 vertices.
    let n = query.num_nodes();
    let mut adj: Vec<u128> = (0..n as QueryNode)
        .map(|a| query.neighbor_mask(a))
        .collect();
    let mut alive: u128 = if n == 0 {
        0
    } else if n == 128 {
        u128::MAX
    } else {
        (1u128 << n) - 1
    };
    loop {
        let mut progressed = false;
        for a in 0..n {
            if (alive >> a) & 1 == 1 && adj[a].count_ones() <= 1 {
                remove_vertex(&mut adj, &mut alive, a);
                progressed = true;
            }
        }
        if alive == 0 {
            return true;
        }
        if !progressed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> QueryGraph {
        let mut q = QueryGraph::new(n);
        for i in 0..n {
            q.add_edge(i as QueryNode, ((i + 1) % n) as QueryNode)
                .unwrap();
        }
        q
    }

    fn complete(n: usize) -> QueryGraph {
        let mut q = QueryGraph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                q.add_edge(a as QueryNode, b as QueryNode).unwrap();
            }
        }
        q
    }

    #[test]
    fn trees_have_treewidth_at_most_two() {
        let mut star = QueryGraph::new(6);
        for leaf in 1..6 {
            star.add_edge(0, leaf).unwrap();
        }
        assert!(treewidth_at_most_two(&star));
        assert!(is_tree(&star));
        assert!(is_forest(&star));
    }

    #[test]
    fn cycles_are_treewidth_two_but_not_trees() {
        for n in 3..10 {
            let c = cycle(n);
            assert!(treewidth_at_most_two(&c), "C_{n}");
            assert!(!is_tree(&c));
            assert!(!is_forest(&c));
        }
    }

    #[test]
    fn series_parallel_is_treewidth_two() {
        // Three internally disjoint paths between nodes 0 and 1.
        let mut q = QueryGraph::new(8);
        q.add_edge(0, 2).unwrap();
        q.add_edge(2, 1).unwrap();
        q.add_edge(0, 3).unwrap();
        q.add_edge(3, 4).unwrap();
        q.add_edge(4, 1).unwrap();
        q.add_edge(0, 5).unwrap();
        q.add_edge(5, 6).unwrap();
        q.add_edge(6, 7).unwrap();
        q.add_edge(7, 1).unwrap();
        assert!(treewidth_at_most_two(&q));
    }

    #[test]
    fn k4_and_larger_cliques_exceed_treewidth_two() {
        assert!(!treewidth_at_most_two(&complete(4)));
        assert!(!treewidth_at_most_two(&complete(5)));
        assert!(treewidth_at_most_two(&complete(3)));
    }

    #[test]
    fn k4_minus_an_edge_is_treewidth_two() {
        let mut q = complete(4);
        // Rebuild without edge (0, 1).
        let mut r = QueryGraph::new(4);
        for (a, b) in q.edges() {
            if (a, b) != (0, 1) {
                r.add_edge(a, b).unwrap();
            }
        }
        q = r;
        assert!(treewidth_at_most_two(&q));
    }

    #[test]
    fn small_graphs_are_trivially_fine() {
        assert!(treewidth_at_most_two(&QueryGraph::new(1)));
        assert!(treewidth_at_most_two(
            &QueryGraph::from_edges(2, &[(0, 1)]).unwrap()
        ));
    }

    #[test]
    fn grid_3x3_exceeds_treewidth_two() {
        // The 3x3 grid has treewidth 3.
        let mut q = QueryGraph::new(9);
        let id = |r: usize, c: usize| (r * 3 + c) as QueryNode;
        for r in 0..3 {
            for c in 0..3 {
                if r + 1 < 3 {
                    q.add_edge(id(r, c), id(r + 1, c)).unwrap();
                }
                if c + 1 < 3 {
                    q.add_edge(id(r, c), id(r, c + 1)).unwrap();
                }
            }
        }
        assert!(!treewidth_at_most_two(&q));
    }
}
