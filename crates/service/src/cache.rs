//! The result cache: single-flight, keyed by the full determinism tuple.
//!
//! Because estimation is deterministic — trial `i` colors with `seed + i`,
//! and the adaptive stopping rule is a pure function of the per-trial
//! counts — two jobs with the same (graph, canonical query, algorithm,
//! seed, budget, precision) tuple are guaranteed to produce bit-identical
//! outputs. The cache exploits that in both directions:
//!
//! * **memoization** — a completed result is stored and replayed for every
//!   later identical submission, and
//! * **single-flight** — while a result is being computed, identical jobs
//!   *join* the in-flight computation instead of starting their own; all of
//!   them are fulfilled by the one worker that runs it.
//!
//! Keys never include the graph itself: the owning service binds one graph
//! and stamps its [`fingerprint`](sgc_graph::CsrGraph::fingerprint) into
//! every key, so cached results can never leak across graphs even if
//! services are rebuilt.

use crate::error::ServiceError;
use crate::job::{CountJob, JobOutput, JobState};
use sgc_query::{canonical_key, CanonicalQueryKey};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The cache identity of a job: everything its output deterministically
/// depends on.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct JobKey {
    graph_fingerprint: u64,
    query: CanonicalQueryKey,
    algorithm: sgc_core::Algorithm,
    seed: u64,
    budget: usize,
    /// Bit patterns of (target, confidence); `None` = no early stopping.
    precision: Option<(u64, u64)>,
}

impl JobKey {
    pub(crate) fn new(graph_fingerprint: u64, job: &CountJob) -> Self {
        JobKey {
            graph_fingerprint,
            query: canonical_key(&job.query),
            algorithm: job.algorithm,
            seed: job.seed,
            budget: job.budget,
            precision: job
                .precision
                .map(|p| (p.target.to_bits(), p.confidence.to_bits())),
        }
    }
}

/// A cache slot: either a computation in progress (with the handles of
/// every job waiting to be fulfilled by it) or a completed output with its
/// last-served recency tick (what the LRU bound evicts on).
enum Slot {
    InFlight(Vec<Arc<JobState>>),
    Ready { output: JobOutput, last_used: u64 },
}

/// What [`ResultCache::claim`] decided about a job.
///
/// The cache never fulfills job handles on this path — it hands decisions
/// (and, for completions, the waiter handles) back to the worker, which
/// updates the service counters *before* fulfilling. That ordering is what
/// makes the metrics trustworthy: once a caller's `wait()` returns, the
/// hit/miss that produced the result is already counted.
pub(crate) enum Claim {
    /// The caller owns the computation: run it, then call
    /// [`ResultCache::complete`] and fulfill its returned waiters.
    Compute,
    /// A completed entry matched: fulfill the job with this output
    /// (already marked `from_cache`).
    Served(JobOutput),
    /// The job was attached to an identical in-flight computation; the
    /// worker that owns it will receive this job's handle from
    /// [`ResultCache::complete`] and fulfill it.
    Joined,
}

/// The single-flight result cache, bounded to `capacity` completed
/// entries.
///
/// With versioned graphs every delta mints a fresh version id, and every
/// version's jobs get their own cache keys — an unbounded cache would grow
/// with the lifetime of the chain. The bound applies to *completed*
/// entries only: in-flight slots are never evicted (jobs are joined onto
/// them), and eviction picks the least recently *served* ready entry.
pub(crate) struct ResultCache {
    slots: Mutex<HashMap<JobKey, Slot>>,
    capacity: usize,
    tick: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    pub(crate) fn new(capacity: usize) -> Self {
        ResultCache {
            slots: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<JobKey, Slot>> {
        // Entries are only ever whole `Slot` values; a panicking worker
        // cannot leave one torn, so poisoning is recoverable.
        self.slots.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Routes one job through the cache: serve it, join it to an in-flight
    /// twin, or hand the computation to the caller.
    pub(crate) fn claim(&self, key: JobKey, state: &Arc<JobState>) -> Claim {
        let tick = self.next_tick();
        let mut slots = self.lock();
        match slots.get_mut(&key) {
            Some(Slot::Ready { output, last_used }) => {
                *last_used = tick;
                let mut served = output.clone();
                served.from_cache = true;
                Claim::Served(served)
            }
            Some(Slot::InFlight(waiters)) => {
                waiters.push(Arc::clone(state));
                Claim::Joined
            }
            None => {
                slots.insert(key, Slot::InFlight(Vec::new()));
                Claim::Compute
            }
        }
    }

    /// Completes a computation previously claimed with [`Claim::Compute`]:
    /// stores successful outputs for future hits, drops failed entries
    /// (errors are not cached), and returns the handles of every joined
    /// waiter for the caller to fulfill (after counting them).
    ///
    /// Cancelled outputs ([`StopReason::Cancelled`]) are also *not* stored:
    /// they cover fewer trials than the key's budget promises, so caching
    /// them would serve a truncated estimate to later identical jobs that
    /// nobody cancelled. For the same reason the worker fails waiters that
    /// joined a cancelled computation with [`ServiceError::Cancelled`]
    /// instead of fulfilling them with the partial output — they asked for
    /// the full budget and never cancelled; failing lets them retry (the
    /// key is free again, so the retry recomputes).
    pub(crate) fn complete(
        &self,
        key: JobKey,
        result: &Result<JobOutput, ServiceError>,
    ) -> Vec<Arc<JobState>> {
        let mut slots = self.lock();
        let waiters = match slots.remove(&key) {
            Some(Slot::InFlight(waiters)) => waiters,
            // A Ready entry or a missing one means claim/complete were not
            // paired; nothing waits on us either way.
            _ => Vec::new(),
        };
        if let Ok(output) = result {
            if output.stop != crate::job::StopReason::Cancelled {
                slots.insert(
                    key,
                    Slot::Ready {
                        output: output.clone(),
                        last_used: self.tick.fetch_add(1, Ordering::Relaxed) + 1,
                    },
                );
                // Enforce the bound: evict least-recently-served ready
                // entries (never in-flight slots) until we fit.
                let mut evicted = 0u64;
                while slots
                    .values()
                    .filter(|s| matches!(s, Slot::Ready { .. }))
                    .count()
                    > self.capacity
                {
                    let victim = slots
                        .iter()
                        .filter_map(|(k, s)| match s {
                            Slot::Ready { last_used, .. } => Some((*last_used, k.clone())),
                            Slot::InFlight(_) => None,
                        })
                        .min_by_key(|(last_used, _)| *last_used)
                        .map(|(_, k)| k)
                        .expect("over capacity implies a ready entry");
                    slots.remove(&victim);
                    evicted += 1;
                }
                if evicted > 0 {
                    self.evictions.fetch_add(evicted, Ordering::Relaxed);
                }
            }
        }
        waiters
    }

    /// Completed entries evicted so far to honor the capacity bound.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of completed results currently held.
    pub(crate) fn ready_entries(&self) -> usize {
        self.lock()
            .values()
            .filter(|slot| matches!(slot, Slot::Ready { .. }))
            .count()
    }

    /// Fails every in-flight waiter (used on shutdown after the workers
    /// have exited: nothing will complete those computations anymore).
    pub(crate) fn fail_in_flight(&self, error: ServiceError) {
        let mut slots = self.lock();
        for slot in slots.values_mut() {
            if let Slot::InFlight(waiters) = slot {
                for waiter in waiters.drain(..) {
                    waiter.fulfill(Err(error.clone()));
                }
            }
        }
        slots.retain(|_, slot| matches!(slot, Slot::Ready { .. }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Precision, StopReason};
    use sgc_query::{catalog, QueryGraph};

    fn demo_output() -> JobOutput {
        // A structurally valid output; the cache never inspects it.
        let graph = {
            let mut b = sgc_graph::GraphBuilder::new(4);
            b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
            b.build()
        };
        let estimate = sgc_core::Engine::new(&graph)
            .count(&catalog::triangle())
            .trials(2)
            .estimate()
            .unwrap();
        JobOutput {
            estimate,
            trials_run: 2,
            budget: 2,
            stop: StopReason::BudgetExhausted,
            from_cache: false,
        }
    }

    fn demo_key(seed: u64) -> JobKey {
        JobKey::new(7, &CountJob::new(catalog::triangle()).seed(seed))
    }

    #[test]
    fn keys_canonicalize_the_query_and_separate_everything_else() {
        let job = CountJob::new(catalog::triangle());
        let twin = CountJob::new(QueryGraph::from_edges(3, &[(2, 0), (1, 2), (0, 1)]).unwrap());
        assert_eq!(JobKey::new(1, &job), JobKey::new(1, &twin));
        // Any differing component separates the keys.
        assert_ne!(JobKey::new(1, &job), JobKey::new(2, &job));
        assert_ne!(JobKey::new(1, &job), JobKey::new(1, &job.clone().seed(1)));
        assert_ne!(
            JobKey::new(1, &job),
            JobKey::new(1, &job.clone().budget(65))
        );
        assert_ne!(
            JobKey::new(1, &job),
            JobKey::new(
                1,
                &job.clone().algorithm(sgc_core::Algorithm::PathSplitting)
            )
        );
        assert_ne!(
            JobKey::new(1, &job),
            JobKey::new(1, &job.clone().precision(Precision::within(0.1)))
        );
    }

    #[test]
    fn claim_compute_then_complete_serves_later_submissions() {
        let cache = ResultCache::new(64);
        let first = Arc::new(JobState::with_progress(None));
        assert!(matches!(cache.claim(demo_key(0), &first), Claim::Compute));
        assert!(cache.complete(demo_key(0), &Ok(demo_output())).is_empty());
        assert_eq!(cache.ready_entries(), 1);

        let second = Arc::new(JobState::with_progress(None));
        match cache.claim(demo_key(0), &second) {
            Claim::Served(output) => assert!(output.from_cache),
            _ => panic!("expected a Served claim from a completed entry"),
        }

        // A different key still computes.
        let third = Arc::new(JobState::with_progress(None));
        assert!(matches!(cache.claim(demo_key(1), &third), Claim::Compute));
    }

    #[test]
    fn in_flight_twins_join_and_their_handles_return_on_completion() {
        let cache = ResultCache::new(64);
        let owner = Arc::new(JobState::with_progress(None));
        let joined_a = Arc::new(JobState::with_progress(None));
        let joined_b = Arc::new(JobState::with_progress(None));
        assert!(matches!(cache.claim(demo_key(0), &owner), Claim::Compute));
        assert!(matches!(cache.claim(demo_key(0), &joined_a), Claim::Joined));
        assert!(matches!(cache.claim(demo_key(0), &joined_b), Claim::Joined));
        assert!(!joined_a.is_fulfilled());

        let waiters = cache.complete(demo_key(0), &Ok(demo_output()));
        assert_eq!(waiters.len(), 2);
        assert!(waiters.iter().any(|w| Arc::ptr_eq(w, &joined_a)));
        assert!(waiters.iter().any(|w| Arc::ptr_eq(w, &joined_b)));
        // complete() hands the waiters back unfulfilled: the worker counts
        // the hits first, then fulfills. The owner's state is never among
        // them.
        assert!(!joined_a.is_fulfilled());
        assert!(!waiters.iter().any(|w| Arc::ptr_eq(w, &owner)));
        // Later arrivals of the same key are served from the stored entry.
        assert!(matches!(
            cache.claim(demo_key(0), &Arc::new(JobState::with_progress(None))),
            Claim::Served(_)
        ));
    }

    #[test]
    fn errors_free_the_key_and_are_not_cached() {
        let cache = ResultCache::new(64);
        let owner = Arc::new(JobState::with_progress(None));
        let joined = Arc::new(JobState::with_progress(None));
        cache.claim(demo_key(0), &owner);
        cache.claim(demo_key(0), &joined);
        let waiters = cache.complete(
            demo_key(0),
            &Err(ServiceError::Count(sgc_core::SgcError::ZeroTrials)),
        );
        assert_eq!(waiters.len(), 1);
        assert_eq!(cache.ready_entries(), 0);
        // The key is free again: the next identical job recomputes.
        let retry = Arc::new(JobState::with_progress(None));
        assert!(matches!(cache.claim(demo_key(0), &retry), Claim::Compute));
    }

    #[test]
    fn fail_in_flight_keeps_ready_entries() {
        let cache = ResultCache::new(64);
        let done = Arc::new(JobState::with_progress(None));
        cache.claim(demo_key(0), &done);
        cache.complete(demo_key(0), &Ok(demo_output()));
        let stuck = Arc::new(JobState::with_progress(None));
        let joined = Arc::new(JobState::with_progress(None));
        cache.claim(demo_key(1), &stuck);
        cache.claim(demo_key(1), &joined);
        cache.fail_in_flight(ServiceError::ShuttingDown);
        assert!(matches!(
            JobHandleProbe(&joined).error(),
            Some(ServiceError::ShuttingDown)
        ));
        assert_eq!(cache.ready_entries(), 1);
    }

    /// Test-only view into a `JobState`.
    struct JobHandleProbe<'a>(&'a Arc<JobState>);

    impl JobHandleProbe<'_> {
        fn error(&self) -> Option<ServiceError> {
            crate::job::JobHandle {
                state: Arc::clone(self.0),
            }
            .try_result()
            .and_then(|r| r.err())
        }
    }
}
