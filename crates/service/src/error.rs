//! Typed errors of the counting service.
//!
//! Every way a job can fail to be served is a [`ServiceError`] variant:
//! admission control (a full queue is a *reply*, not unbounded growth),
//! lifecycle (submitting to or waiting on a shut-down service), invalid
//! precision targets, and the underlying counting errors of `sgc-core`.

use sgc_core::SgcError;

/// Reasons a job submission or wait cannot produce a result.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// The bounded work queue is at capacity. The service sheds load by
    /// rejecting at admission instead of queueing without bound; callers
    /// should back off and resubmit.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The service has been shut down: either the submission arrived after
    /// [`shutdown`](crate::Service::shutdown), or the service was dropped
    /// while the job was still queued.
    ShuttingDown,
    /// A precision target was supplied with a non-positive (or non-finite)
    /// relative half-width, or a confidence level outside `(0, 1)`.
    InvalidPrecision {
        /// The requested relative half-width target.
        target: f64,
        /// The requested confidence level.
        confidence: f64,
    },
    /// The job was cancelled before any trials completed, so there is no
    /// partial estimate to report. (A job cancelled *after* at least one
    /// chunk ran completes successfully with
    /// [`StopReason::Cancelled`](crate::StopReason::Cancelled) instead.)
    Cancelled,
    /// The job's worker disappeared without producing a result (a panic in
    /// the counting code). The service keeps serving other jobs.
    WorkerLost,
    /// The counting engine rejected the job (unplannable query, zero trial
    /// budget, …).
    Count(SgcError),
    /// A versioned job referenced a graph version the service does not
    /// hold (never applied here, or from another graph's chain).
    UnknownVersion {
        /// The raw version id that failed to resolve.
        version: u64,
    },
    /// An edge delta could not be applied to the current head snapshot
    /// (deleting an absent edge, inserting an existing one, a vertex out
    /// of range, …). The graph is unchanged.
    Delta {
        /// Human-readable rejection reason from the snapshot layer.
        reason: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "work queue is full ({capacity} jobs); resubmit later")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::InvalidPrecision { target, confidence } => write!(
                f,
                "invalid precision target (relative half-width {target}, confidence \
                 {confidence}): the target must be positive and finite, the confidence in (0, 1)"
            ),
            ServiceError::Cancelled => {
                write!(f, "job cancelled before any trials completed")
            }
            ServiceError::WorkerLost => {
                write!(f, "the worker processing this job terminated unexpectedly")
            }
            ServiceError::Count(e) => write!(f, "counting failed: {e}"),
            ServiceError::UnknownVersion { version } => {
                write!(f, "unknown graph version v{version:016x}")
            }
            ServiceError::Delta { reason } => write!(f, "delta rejected: {reason}"),
        }
    }
}

impl From<sgc_dyn::DynError> for ServiceError {
    fn from(e: sgc_dyn::DynError) -> Self {
        match e {
            sgc_dyn::DynError::UnknownVersion(v) => ServiceError::UnknownVersion {
                version: v.as_u64(),
            },
            sgc_dyn::DynError::Delta(d) => ServiceError::Delta {
                reason: d.to_string(),
            },
            sgc_dyn::DynError::Count(c) => ServiceError::Count(c),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Count(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SgcError> for ServiceError {
    fn from(e: SgcError) -> Self {
        ServiceError::Count(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(ServiceError::QueueFull { capacity: 8 }
            .to_string()
            .contains('8'));
        assert!(ServiceError::ShuttingDown.to_string().contains("shut"));
        assert!(ServiceError::InvalidPrecision {
            target: -0.1,
            confidence: 0.95
        }
        .to_string()
        .contains("-0.1"));
        assert!(ServiceError::WorkerLost.to_string().contains("worker"));
        assert!(ServiceError::from(SgcError::ZeroTrials)
            .to_string()
            .contains("trial"));
    }

    #[test]
    fn count_errors_convert_and_expose_a_source() {
        let err = ServiceError::from(SgcError::ZeroTrials);
        assert_eq!(err, ServiceError::Count(SgcError::ZeroTrials));
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&ServiceError::ShuttingDown).is_none());
    }
}
