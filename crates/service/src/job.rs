//! Job descriptions, completion handles and outputs.
//!
//! A [`CountJob`] is everything a caller wants counted: the query, the
//! algorithm, the determinism seed, a trial *budget*, and optionally a
//! [`Precision`] target that lets the scheduler stop early once the
//! confidence interval is tight enough. Submission returns a [`JobHandle`];
//! [`JobHandle::wait`] blocks until the worker pool produces a
//! [`JobOutput`] (or a [`ServiceError`]).

use crate::error::ServiceError;
use sgc_core::{Algorithm, Estimate};
use sgc_query::{Pattern, PatternParseError, QueryGraph, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A precision target for adaptive trial scheduling: stop once the relative
/// half-width of the confidence interval around the estimate drops to
/// `target` or below.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Precision {
    /// Maximum acceptable relative half-width (e.g. `0.1` = ±10%).
    pub target: f64,
    /// Confidence level of the interval (e.g. `0.95`).
    pub confidence: f64,
}

impl Precision {
    /// A target relative half-width at the conventional 95% confidence.
    pub fn within(target: f64) -> Self {
        Precision {
            target,
            confidence: 0.95,
        }
    }

    /// Sets the confidence level.
    pub fn at_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    pub(crate) fn validate(&self) -> Result<(), ServiceError> {
        let ok = self.target.is_finite()
            && self.target > 0.0
            && self.confidence > 0.0
            && self.confidence < 1.0;
        if ok {
            Ok(())
        } else {
            Err(ServiceError::InvalidPrecision {
                target: self.target,
                confidence: self.confidence,
            })
        }
    }
}

/// One counting request, to be submitted with
/// [`Service::submit`](crate::Service::submit).
///
/// Defaults mirror the paper's measurement conventions: the Degree Based
/// algorithm, the engine's default seed, a 64-trial budget, and no early
/// stopping (run the whole budget).
#[derive(Clone, Debug)]
pub struct CountJob {
    /// The query to count.
    pub query: QueryGraph,
    /// Cycle-solving algorithm.
    pub algorithm: Algorithm,
    /// Base RNG seed; trial `i` colors with `seed + i`, exactly as in the
    /// batch [`estimate`](sgc_core::CountRequest::estimate) API.
    pub seed: u64,
    /// Maximum number of trials the job may spend.
    pub budget: usize,
    /// Optional early-stop target; `None` runs the full budget.
    pub precision: Option<Precision>,
    /// Observability trace ID. `None` (the default) mints a fresh ID at
    /// submission; clients that propagate their own correlation IDs over
    /// the wire set it explicitly. Deliberately **not** part of the result
    /// cache identity (the internal `JobKey`): two submissions
    /// that differ only in trace ID are still the same computation.
    pub trace_id: Option<u64>,
}

impl CountJob {
    /// A job counting `query` with the default algorithm, seed and budget.
    pub fn new(query: QueryGraph) -> Self {
        CountJob {
            query,
            algorithm: Algorithm::DegreeBased,
            seed: 0x5eed,
            budget: 64,
            precision: None,
            trace_id: None,
        }
    }

    /// A job for a textual pattern — the service's parsing front door.
    ///
    /// The text is parsed against the built-in
    /// [`Registry`] (edge lists like `"a-b, b-c, c-a"`,
    /// generators like `cycle(5)`, catalog names like `glet1`; see
    /// [`sgc_query::parse`] for the grammar). The parsed query flows into
    /// the job exactly as a constructor-built one would, including the
    /// result cache's [`canonical_key`](sgc_query::canonical_key): a text
    /// job and an equivalent constructor job share one cache entry and
    /// produce bit-identical outputs.
    ///
    /// ```
    /// use sgc_query::catalog;
    /// use sgc_service::CountJob;
    ///
    /// let by_text = CountJob::from_pattern_str("cycle(5)").unwrap();
    /// let by_ctor = CountJob::new(catalog::cycle(5));
    /// assert_eq!(by_text.query, by_ctor.query);
    /// assert!(CountJob::from_pattern_str("cycle(").is_err());
    /// ```
    ///
    /// # Errors
    /// A spanned [`PatternParseError`] for malformed patterns; never panics.
    pub fn from_pattern_str(pattern: &str) -> Result<Self, PatternParseError> {
        Ok(CountJob::new(Pattern::parse(pattern)?.into_query()))
    }

    /// [`from_pattern_str`](CountJob::from_pattern_str) resolving bare names
    /// against a caller-supplied [`Registry`] (for runtime-registered
    /// patterns).
    ///
    /// # Errors
    /// A spanned [`PatternParseError`] for malformed patterns; never panics.
    pub fn from_pattern_str_with(
        registry: &Registry,
        pattern: &str,
    ) -> Result<Self, PatternParseError> {
        Ok(CountJob::new(
            Pattern::parse_with(registry, pattern)?.into_query(),
        ))
    }

    /// Selects the cycle-solving algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trial budget.
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the early-stop precision target.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Sets an explicit observability trace ID (propagated from the wire);
    /// without it, submission mints a fresh one.
    pub fn trace(mut self, trace_id: u64) -> Self {
        self.trace_id = Some(trace_id);
        self
    }
}

/// A set of [`CountJob`]s submitted together for batched execution.
///
/// A batch is admitted atomically (all members or none, counted against the
/// queue capacity member by member) and processed by one worker as a unit:
/// members without a [`Precision`] target run through the engine's batched
/// executor ([`count_batch`](sgc_core::Engine::count_batch)), sharing one
/// coloring pass per trial step and one DP result per structurally
/// identical query; members *with* a precision target keep their individual
/// adaptive trial loop (early stopping and coloring sharing pull in
/// opposite directions, so each job gets the optimization that matches its
/// contract). Every member's result is bit-identical to its solo
/// submission and lands in the single-flight result cache under the same
/// canonical key, so batched and solo submissions stay interchangeable.
///
/// ```
/// use sgc_query::catalog;
/// use sgc_service::{BatchJob, CountJob};
///
/// let batch = BatchJob::new()
///     .push(CountJob::new(catalog::triangle()).seed(7).budget(16))
///     .push(CountJob::new(catalog::cycle(4)).seed(7).budget(16));
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BatchJob {
    jobs: Vec<CountJob>,
}

impl BatchJob {
    /// An empty batch.
    pub fn new() -> Self {
        BatchJob::default()
    }

    /// A batch over an existing job list.
    pub fn from_jobs(jobs: Vec<CountJob>) -> Self {
        BatchJob { jobs }
    }

    /// Appends one member.
    pub fn push(mut self, job: CountJob) -> Self {
        self.jobs.push(job);
        self
    }

    /// The members, in submission order.
    pub fn jobs(&self) -> &[CountJob] {
        &self.jobs
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch has no members.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    pub(crate) fn into_jobs(self) -> Vec<CountJob> {
        self.jobs
    }
}

/// Why a job stopped running trials.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The confidence interval met the requested precision target before the
    /// budget ran out.
    PrecisionMet,
    /// The trial budget was exhausted (always the reason when no precision
    /// target was set).
    BudgetExhausted,
    /// The job was cancelled ([`JobHandle::cancel`]) after at least one
    /// chunk of trials had run: the output carries the anytime estimate
    /// over the trials that completed before the cancellation took effect.
    /// Cancelled outputs are never stored in the result cache.
    Cancelled,
}

/// A progress snapshot delivered to a job's watcher after each chunk of
/// trials (see [`Service::submit_with_progress`](crate::Service::submit_with_progress)).
///
/// The embedded [`Estimate`] is anytime-consistent: bit-identical to what a
/// batch [`estimate`](sgc_core::CountRequest::estimate) of exactly
/// `trials_run` trials with the job's seed would return.
#[derive(Clone, Debug)]
pub struct ChunkUpdate {
    /// Trials executed so far (monotonically increasing across updates).
    pub trials_run: usize,
    /// The job's trial budget.
    pub budget: usize,
    /// The estimate over the trials executed so far.
    pub estimate: Estimate,
}

/// A job progress watcher: invoked synchronously on the worker thread after
/// every completed chunk of trials, strictly before the job's handle is
/// fulfilled. Keep it cheap — the worker does not run trials while the
/// watcher executes.
pub type ProgressFn = Arc<dyn Fn(&ChunkUpdate) + Send + Sync>;

/// The result of a completed job.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// The estimate over the trials that actually ran. Anytime-consistent:
    /// bit-identical to a batch `estimate()` of exactly `trials_run` trials
    /// with the job's seed.
    pub estimate: Estimate,
    /// Trials executed (`≤ budget`; strictly fewer when the precision target
    /// stopped the job early).
    pub trials_run: usize,
    /// The budget the job was submitted with.
    pub budget: usize,
    /// Why the trial loop stopped.
    pub stop: StopReason,
    /// Whether this result was served from the result cache rather than
    /// computed for this submission.
    pub from_cache: bool,
}

/// Shared completion slot between a [`JobHandle`] and the worker pool.
pub(crate) struct JobState {
    slot: Mutex<Option<Result<JobOutput, ServiceError>>>,
    ready: Condvar,
    /// Set by [`JobHandle::cancel`] / [`CancelToken::cancel`]; the worker
    /// checks it at every chunk boundary.
    cancelled: AtomicBool,
    /// Optional per-chunk progress watcher, fixed at submission time.
    progress: Option<ProgressFn>,
}

impl JobState {
    pub(crate) fn with_progress(progress: Option<ProgressFn>) -> Self {
        JobState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
            cancelled: AtomicBool::new(false),
            progress,
        }
    }

    pub(crate) fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Delivers a chunk update to the watcher, if one was registered.
    pub(crate) fn emit_progress(&self, update: &ChunkUpdate) {
        if let Some(progress) = &self.progress {
            progress(update);
        }
    }

    pub(crate) fn has_progress(&self) -> bool {
        self.progress.is_some()
    }

    /// Fills the slot (first writer wins) and wakes every waiter.
    pub(crate) fn fulfill(&self, result: Result<JobOutput, ServiceError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(result);
            self.ready.notify_all();
        }
    }

    pub(crate) fn is_fulfilled(&self) -> bool {
        self.slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_some()
    }

    fn wait(&self) -> Result<JobOutput, ServiceError> {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.ready.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn peek(&self) -> Option<Result<JobOutput, ServiceError>> {
        self.slot.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

/// A handle to one submitted job.
///
/// Obtained from [`Service::submit`](crate::Service::submit). Dropping the
/// handle does not cancel the job; it simply discards the result.
pub struct JobHandle {
    pub(crate) state: std::sync::Arc<JobState>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("completed", &self.state.is_fulfilled())
            .finish()
    }
}

impl JobHandle {
    /// Blocks until the job completes and returns its output.
    pub fn wait(self) -> Result<JobOutput, ServiceError> {
        self.state.wait()
    }

    /// Returns the result if the job has already completed, without
    /// blocking.
    pub fn try_result(&self) -> Option<Result<JobOutput, ServiceError>> {
        self.state.peek()
    }

    /// Requests cancellation of the job.
    ///
    /// Cancellation is cooperative and takes effect at the next chunk
    /// boundary of the adaptive trial loop: a job that already ran at least
    /// one chunk completes *successfully* with
    /// [`StopReason::Cancelled`] and the anytime estimate over the trials
    /// that did run; a job cancelled before its worker picked it up (or
    /// before its first chunk completed its follow-up check) fails with
    /// [`ServiceError::Cancelled`]. Cancelling a finished job is a no-op.
    /// Cancelled outputs are never stored in the result cache, so later
    /// identical submissions recompute the full result.
    pub fn cancel(&self) {
        self.state.cancel();
    }

    /// A detachable cancellation token for this job: lets one owner wait on
    /// the handle while another (a network connection reader, a timeout
    /// watchdog) can still cancel it.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            state: Arc::clone(&self.state),
        }
    }
}

/// A clonable token that can cancel one submitted job (see
/// [`JobHandle::cancel_token`]).
#[derive(Clone)]
pub struct CancelToken {
    state: Arc<JobState>,
}

impl CancelToken {
    /// Requests cancellation; same semantics as [`JobHandle::cancel`].
    pub fn cancel(&self) {
        self.state.cancel();
    }

    /// Whether cancellation has been requested (not whether it has taken
    /// effect yet).
    pub fn is_cancelled(&self) -> bool {
        self.state.is_cancelled()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.state.is_cancelled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_query::catalog;

    #[test]
    fn job_builder_sets_every_field() {
        let job = CountJob::new(catalog::triangle())
            .algorithm(Algorithm::PathSplitting)
            .seed(9)
            .budget(128)
            .precision(Precision::within(0.05).at_confidence(0.99))
            .trace(77);
        assert_eq!(job.algorithm, Algorithm::PathSplitting);
        assert_eq!(job.seed, 9);
        assert_eq!(job.budget, 128);
        let p = job.precision.unwrap();
        assert_eq!(p.target, 0.05);
        assert_eq!(p.confidence, 0.99);
        assert_eq!(job.trace_id, Some(77));
        // Trace IDs default to "mint one at submission".
        assert_eq!(CountJob::new(catalog::triangle()).trace_id, None);
    }

    #[test]
    fn pattern_jobs_match_constructor_jobs() {
        let text = CountJob::from_pattern_str("glet1").unwrap();
        let built = CountJob::new(catalog::glet1());
        assert_eq!(text.query, built.query);
        assert_eq!(text.seed, built.seed);
        assert_eq!(text.budget, built.budget);
        // Same canonical cache identity, by construction.
        assert_eq!(
            sgc_query::canonical_key(&text.query),
            sgc_query::canonical_key(&built.query)
        );
        // Custom registries resolve runtime names.
        let mut registry = sgc_query::Registry::with_catalog();
        registry
            .register(
                "paw",
                "triangle with a tail",
                catalog::query_by_name("youtube").unwrap(),
            )
            .unwrap();
        let custom = CountJob::from_pattern_str_with(&registry, "paw").unwrap();
        assert_eq!(custom.query, catalog::youtube());
        // Malformed patterns are spanned errors, not panics.
        let err = CountJob::from_pattern_str("a--b").unwrap_err();
        assert_eq!(err.span(), 2..3);
    }

    #[test]
    fn precision_validation() {
        assert!(Precision::within(0.1).validate().is_ok());
        for bad in [
            Precision::within(0.0),
            Precision::within(-1.0),
            Precision::within(f64::NAN),
            Precision::within(f64::INFINITY),
            Precision::within(0.1).at_confidence(0.0),
            Precision::within(0.1).at_confidence(1.0),
        ] {
            assert!(matches!(
                bad.validate(),
                Err(ServiceError::InvalidPrecision { .. })
            ));
        }
    }

    #[test]
    fn job_state_fulfill_once_and_wait() {
        let state = std::sync::Arc::new(JobState::with_progress(None));
        assert!(!state.is_fulfilled());
        state.fulfill(Err(ServiceError::WorkerLost));
        // Second fulfillment is ignored: first writer wins.
        state.fulfill(Err(ServiceError::ShuttingDown));
        assert!(state.is_fulfilled());
        let handle = JobHandle {
            state: state.clone(),
        };
        assert!(matches!(
            handle.try_result(),
            Some(Err(ServiceError::WorkerLost))
        ));
        assert!(matches!(handle.wait(), Err(ServiceError::WorkerLost)));
    }

    #[test]
    fn wait_blocks_until_a_worker_fulfills() {
        let state = std::sync::Arc::new(JobState::with_progress(None));
        let handle = JobHandle {
            state: state.clone(),
        };
        let waiter = std::thread::spawn(move || handle.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        state.fulfill(Err(ServiceError::ShuttingDown));
        assert!(matches!(
            waiter.join().unwrap(),
            Err(ServiceError::ShuttingDown)
        ));
    }
}
