//! # sgc-service — a concurrent subgraph-counting service
//!
//! The layer above the [`Engine`](sgc_core::Engine): where the engine
//! answers one caller at a time, a [`Service`] binds a graph once and
//! serves *many* concurrent callers, deciding how much work each request
//! actually needs:
//!
//! * [`service`] — the front door: a bounded work queue with admission
//!   control ([`ServiceError::QueueFull`] instead of unbounded growth) and
//!   a worker pool draining it, one shared `Engine<'static>` under all of
//!   it,
//! * [`job`] — the request vocabulary: [`CountJob`] (query, algorithm,
//!   seed, trial budget, optional [`Precision`] target), [`JobHandle`] /
//!   [`JobOutput`], and the [`StopReason`] the adaptive scheduler reports,
//! * [`cache`] — the single-flight result cache: identical jobs are
//!   answered once and replayed bit-identically, whether they arrive after
//!   the computation finished (memoization) or while it is still running
//!   (in-flight join),
//! * [`metrics`] — [`ServiceMetrics`]: queue depth, jobs served/rejected,
//!   cache hit rate, and the trials early stopping saved,
//! * [`error`] — the [`ServiceError`] taxonomy.
//!
//! The paper's measurement loop (Section 2, Figure 15) runs a *fixed*
//! number of random-coloring trials per estimate. The service replaces
//! that with *anytime* estimation: trials stream in chunks through
//! [`sgc_core::TrialStream`], a Welford accumulator watches the confidence
//! interval tighten, and each job stops at its own precision target — so a
//! caller asking for ±50% pays a fraction of the trials a ±5% caller does,
//! and neither pays anything when the answer is already cached.
//!
//! ```
//! use sgc_graph::GraphBuilder;
//! use sgc_query::catalog;
//! use sgc_service::{CountJob, Precision, Service};
//! use std::sync::Arc;
//!
//! let mut b = GraphBuilder::new(6);
//! b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
//! let graph = Arc::new(b.build());
//!
//! let service = Service::new(graph); // preprocessing runs once, here
//! let output = service
//!     .run(
//!         CountJob::new(catalog::triangle())
//!             .seed(7)
//!             .budget(64)
//!             .precision(Precision::within(0.5)),
//!     )
//!     .unwrap();
//! assert!(output.trials_run <= 64);
//! assert!(output.estimate.estimated_subgraphs > 0.0);
//!
//! // The identical job again: served from the result cache, bit-identical.
//! let again = service
//!     .run(
//!         CountJob::new(catalog::triangle())
//!             .seed(7)
//!             .budget(64)
//!             .precision(Precision::within(0.5)),
//!     )
//!     .unwrap();
//! assert!(again.from_cache);
//! assert_eq!(again.estimate.per_trial, output.estimate.per_trial);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod job;
pub mod metrics;
pub mod service;

pub use error::ServiceError;
pub use job::{
    BatchJob, CancelToken, ChunkUpdate, CountJob, JobHandle, JobOutput, Precision, ProgressFn,
    StopReason,
};
pub use metrics::ServiceMetrics;
pub use service::{Service, ServiceConfig, WatchFn, WatchHandle};

// The versioned-graph vocabulary, re-exported so callers of
// `apply_delta` / `count_at` / `watch` need no direct `sgc-dyn` or
// `sgc-graph` dependency.
pub use sgc_dyn::VersionId;
pub use sgc_graph::{DeltaError, EdgeDelta};
