//! Service-level operational metrics.
//!
//! Counters are lock-free atomics bumped on the submission and worker
//! paths; [`ServiceMetrics`] is a coherent-enough snapshot for dashboards
//! and tests (individual counters are exact, cross-counter invariants may
//! lag by in-flight jobs).

use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time snapshot of the service counters, from
/// [`Service::metrics`](crate::Service::metrics).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Jobs accepted by admission control (batch members count
    /// individually).
    pub jobs_submitted: u64,
    /// Batches accepted by admission control (each spanning one or more of
    /// the submitted jobs).
    pub batches_submitted: u64,
    /// Jobs rejected with `QueueFull`.
    pub jobs_rejected: u64,
    /// Jobs fulfilled (computed, served from cache, or joined in flight).
    pub jobs_completed: u64,
    /// Jobs currently waiting in the work queue.
    pub queue_depth: usize,
    /// Jobs answered by the result cache — completed entries *and* joins
    /// onto an identical in-flight computation.
    pub cache_hits: u64,
    /// Jobs that had to compute (first arrival of their key).
    pub cache_misses: u64,
    /// Completed results currently held by the cache.
    pub cached_results: usize,
    /// Counting trials actually executed by the workers.
    pub trials_executed: u64,
    /// Trials *not* run because adaptive scheduling stopped jobs before
    /// their budget — the work early stopping saved.
    pub trials_saved: u64,
    /// Jobs whose cancellation took effect: stopped at a chunk boundary
    /// with a partial estimate, or failed with
    /// [`ServiceError::Cancelled`](crate::ServiceError::Cancelled) before
    /// any trials ran.
    pub jobs_cancelled: u64,
    /// Completed results evicted from the bounded result cache (LRU over
    /// the per-version job keys) to honor its capacity.
    pub cache_evictions: u64,
}

impl ServiceMetrics {
    /// Fraction of cache-routed jobs answered without a computation,
    /// `hits / (hits + misses)`. `0.0` before any job completes routing.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// The stable text form of the metrics: one `name value` pair per line, in
/// a fixed order, no trailing newline.
///
/// This is the *serialization contract* shared by every consumer that
/// prints metrics — the `sgc-net` `stats` verb renders the snapshot it
/// received over the wire with this impl, and the bench binaries print
/// their end-of-run service state through it — so scrapers can parse one
/// format everywhere. New fields are only ever appended.
impl std::fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "jobs_submitted    {}\n\
             batches_submitted {}\n\
             jobs_rejected     {}\n\
             jobs_completed    {}\n\
             jobs_cancelled    {}\n\
             queue_depth       {}\n\
             cache_hits        {}\n\
             cache_misses      {}\n\
             cache_hit_rate    {:.4}\n\
             cached_results    {}\n\
             trials_executed   {}\n\
             trials_saved      {}\n\
             cache_evictions   {}",
            self.jobs_submitted,
            self.batches_submitted,
            self.jobs_rejected,
            self.jobs_completed,
            self.jobs_cancelled,
            self.queue_depth,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate(),
            self.cached_results,
            self.trials_executed,
            self.trials_saved,
            self.cache_evictions,
        )
    }
}

/// The live counters behind [`ServiceMetrics`].
#[derive(Default)]
pub(crate) struct Counters {
    pub jobs_submitted: AtomicU64,
    pub batches_submitted: AtomicU64,
    pub jobs_rejected: AtomicU64,
    pub jobs_completed: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub trials_executed: AtomicU64,
    pub trials_saved: AtomicU64,
    pub jobs_cancelled: AtomicU64,
}

impl Counters {
    pub(crate) fn snapshot(
        &self,
        queue_depth: usize,
        cached_results: usize,
        cache_evictions: u64,
    ) -> ServiceMetrics {
        ServiceMetrics {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            batches_submitted: self.batches_submitted.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            queue_depth,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cached_results,
            trials_executed: self.trials_executed.load(Ordering::Relaxed),
            trials_saved: self.trials_saved.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            cache_evictions,
        }
    }

    pub(crate) fn add(counter: &AtomicU64, value: u64) {
        counter.fetch_add(value, Ordering::Relaxed);
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        Counters::add(counter, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_every_counter() {
        let counters = Counters::default();
        Counters::bump(&counters.jobs_submitted);
        Counters::bump(&counters.jobs_submitted);
        Counters::bump(&counters.batches_submitted);
        Counters::bump(&counters.jobs_rejected);
        Counters::bump(&counters.jobs_completed);
        Counters::bump(&counters.cache_hits);
        Counters::add(&counters.trials_executed, 40);
        Counters::add(&counters.trials_saved, 24);
        let snap = counters.snapshot(3, 1, 2);
        assert_eq!(snap.jobs_submitted, 2);
        assert_eq!(snap.batches_submitted, 1);
        assert_eq!(snap.jobs_rejected, 1);
        assert_eq!(snap.jobs_completed, 1);
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 0);
        assert_eq!(snap.cached_results, 1);
        assert_eq!(snap.trials_executed, 40);
        assert_eq!(snap.trials_saved, 24);
        assert_eq!(snap.cache_evictions, 2);
    }

    #[test]
    fn hit_rate_handles_the_empty_case() {
        let mut snap = ServiceMetrics::default();
        assert_eq!(snap.cache_hit_rate(), 0.0);
        snap.cache_hits = 3;
        snap.cache_misses = 1;
        assert!((snap.cache_hit_rate() - 0.75).abs() < 1e-12);
    }
}
