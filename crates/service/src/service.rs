//! The counting service: bounded queue, worker pool, adaptive trial loop.
//!
//! One [`Service`] binds one data graph (through
//! [`Engine::from_shared`](sgc_core::Engine::from_shared), so the expensive
//! preprocessing runs exactly once) and serves concurrent [`CountJob`]s:
//!
//! * **admission control** — the work queue is bounded; a full queue rejects
//!   with [`ServiceError::QueueFull`] instead of growing without limit,
//! * **adaptive scheduling** — each job's trials run in fixed-size chunks
//!   through the engine's incremental
//!   [`TrialStream`](sgc_core::TrialStream); after every chunk the job's
//!   confidence interval is checked against its
//!   [`Precision`](crate::job::Precision) target and the job stops as soon
//!   as the target is met (or the budget runs out),
//! * **result caching** — deterministic jobs are memoized and
//!   single-flighted (see [`crate::cache`]); identical submissions are
//!   served without recomputation, bit-identically.

use crate::cache::{Claim, JobKey, ResultCache};
use crate::error::ServiceError;
use crate::job::{
    BatchJob, ChunkUpdate, CountJob, JobHandle, JobOutput, JobState, ProgressFn, StopReason,
};
use crate::metrics::{Counters, ServiceMetrics};
use sgc_core::estimator::summarize_trials;
use sgc_core::kernel::ArenaPool;
use sgc_core::{CountRequest, Engine, KernelKind, SgcError};
use sgc_dyn::{PartialStore, TrialSpec, VersionId, VersionedGraph};
use sgc_graph::{CsrGraph, EdgeDelta};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// Construction-time configuration of a [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue. `0` is allowed and means "accept
    /// but never process" — useful for inspecting admission control; real
    /// deployments want at least 1.
    pub workers: usize,
    /// Maximum number of jobs waiting in the queue before submissions are
    /// rejected with [`ServiceError::QueueFull`].
    pub queue_capacity: usize,
    /// Trials per scheduling chunk: the granularity at which the adaptive
    /// loop re-checks a job's precision target. Clamped to at least 1.
    pub chunk_trials: usize,
    /// Whether each chunk's trials additionally fan out over the rayon pool.
    /// Off by default: the service's parallelism axis is *jobs across
    /// workers*, and nested per-trial threading mostly adds scheduling
    /// overhead. Results are bit-identical either way.
    pub trial_parallelism: bool,
    /// Whether workers record observability spans, publish run counters
    /// into the `sgc-obs` registry, and feed the slow-query trace log.
    /// On by default; results are bit-identical either way.
    pub obs: bool,
    /// Maximum completed results the single-flight cache retains. With
    /// versioned graphs every delta mints fresh cache keys, so the cache
    /// is LRU-bounded; evictions are counted in
    /// [`ServiceMetrics::cache_evictions`]. Clamped to at least 1.
    pub cache_capacity: usize,
    /// Shard count versioned jobs (`submit_at` / `watch`) run with — also
    /// the granularity of delta-aware partial replay. Clamped to at
    /// least 1.
    pub dyn_shards: usize,
    /// Approximate byte budget of the per-trial partial-sum store backing
    /// incremental recounts.
    pub partial_store_bytes: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 64,
            chunk_trials: 8,
            trial_parallelism: false,
            obs: true,
            cache_capacity: 256,
            dyn_shards: 4,
            partial_store_bytes: sgc_dyn::DEFAULT_STORE_CAPACITY_BYTES,
        }
    }
}

/// Completed jobs the slow-query log retains (the `trace` net verb's
/// payload); older entries are evicted first.
const TRACE_LOG_CAPACITY: usize = 64;

/// One queued job: the description plus the completion slot its
/// [`JobHandle`] waits on.
struct QueuedJob {
    job: CountJob,
    state: Arc<JobState>,
}

/// One queue slot: a solo submission, a batch processed as a unit, or a
/// job pinned to a graph version.
enum QueueEntry {
    Single(QueuedJob),
    Batch(Vec<QueuedJob>),
    Versioned(VersionId, QueuedJob),
}

impl QueueEntry {
    /// Number of jobs this entry admits against the queue capacity.
    fn members(&self) -> usize {
        match self {
            QueueEntry::Single(_) | QueueEntry::Versioned(_, _) => 1,
            QueueEntry::Batch(jobs) => jobs.len(),
        }
    }
}

/// A live watch subscription: the job re-run at every new version, and the
/// callback its version-tagged chunks are delivered through.
struct Watcher {
    id: u64,
    job: CountJob,
    callback: WatchFn,
    cancelled: Arc<AtomicBool>,
}

/// Callback of a [`watch`](Service::watch) subscription: invoked with the
/// version that landed and the fresh estimate chunk computed at it.
pub type WatchFn = Arc<dyn Fn(VersionId, &ChunkUpdate) + Send + Sync>;

/// Handle to a live [`watch`](Service::watch) subscription. Cancelling (or
/// [`Service::unwatch`]) stops future emissions; an emission already in
/// progress may still be delivered.
pub struct WatchHandle {
    id: u64,
    cancelled: Arc<AtomicBool>,
}

impl WatchHandle {
    /// The subscription's id, usable with [`Service::unwatch`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Stops future emissions for this subscription. The watcher entry is
    /// pruned at the next delta.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }
}

/// Queue state guarded by one mutex: the entries and the shutdown latch.
struct QueueState {
    jobs: VecDeque<QueueEntry>,
    shutdown: bool,
}

impl QueueState {
    /// Jobs currently queued, counting every batch member individually —
    /// the quantity admission control bounds.
    fn member_count(&self) -> usize {
        self.jobs.iter().map(QueueEntry::members).sum()
    }
}

/// Everything the workers share.
struct Shared {
    engine: Engine<'static>,
    graph_fingerprint: u64,
    queue_capacity: usize,
    chunk_trials: usize,
    trial_parallelism: bool,
    obs: bool,
    dyn_shards: usize,
    queue: Mutex<QueueState>,
    available: Condvar,
    cache: ResultCache,
    counters: Counters,
    traces: sgc_obs::TraceLog,
    /// The version chain rooted at the bound graph. Reads (versioned
    /// counting) take the read lock per chunk; `apply_delta` takes the
    /// write lock, so mutation never waits for a whole job.
    dynamic: RwLock<VersionedGraph>,
    /// Per-trial, per-shard partial sums backing incremental recounts.
    partials: PartialStore,
    /// Arena pool the versioned runs check join-kernel scratch out of.
    pool: ArenaPool,
    watchers: Mutex<Vec<Watcher>>,
    watch_ids: AtomicU64,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A concurrent counting service over one bound data graph.
///
/// See the [crate docs](crate) for the full tour and `Service::submit` for
/// the job lifecycle. Dropping the service shuts it down: queued jobs are
/// still drained by the workers, then the threads are joined.
pub struct Service {
    shared: Arc<Shared>,
    /// Worker thread handles, drained (under the lock, so concurrent
    /// shutdowns serialize) by [`shutdown`](Service::shutdown).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Starts a service for `graph` with the default [`ServiceConfig`].
    ///
    /// Binding runs the engine's preprocessing pass once; every job shares
    /// it.
    pub fn new(graph: Arc<CsrGraph>) -> Self {
        Service::with_config(graph, ServiceConfig::default())
    }

    /// Starts a service for `graph` with an explicit configuration.
    pub fn with_config(graph: Arc<CsrGraph>, config: ServiceConfig) -> Self {
        let graph_fingerprint = graph.fingerprint();
        let dynamic = VersionedGraph::new(&graph);
        let shared = Arc::new(Shared {
            engine: Engine::from_shared(graph),
            graph_fingerprint,
            queue_capacity: config.queue_capacity,
            chunk_trials: config.chunk_trials.max(1),
            trial_parallelism: config.trial_parallelism,
            obs: config.obs,
            dyn_shards: config.dyn_shards.max(1),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            cache: ResultCache::new(config.cache_capacity),
            counters: Counters::default(),
            traces: sgc_obs::TraceLog::new(TRACE_LOG_CAPACITY),
            dynamic: RwLock::new(dynamic),
            partials: PartialStore::new(config.partial_store_bytes),
            pool: ArenaPool::new(),
            watchers: Mutex::new(Vec::new()),
            watch_ids: AtomicU64::new(0),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sgc-service-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn service worker thread")
            })
            .collect();
        Service {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Submits a job for asynchronous processing.
    ///
    /// Admission is the only blocking step (one short mutex acquisition):
    /// the call returns a [`JobHandle`] immediately and the worker pool
    /// picks the job up in FIFO order. If the job's determinism key matches
    /// a cached or in-flight result, the handle is fulfilled from that
    /// result without recomputation.
    ///
    /// # Errors
    /// [`ServiceError::QueueFull`] when the bounded queue is at capacity,
    /// [`ServiceError::ShuttingDown`] after [`shutdown`](Service::shutdown),
    /// [`ServiceError::InvalidPrecision`] for an unusable precision target.
    /// Counting-level failures (unplannable query, zero budget, …) are
    /// reported through the handle instead, as
    /// [`ServiceError::Count`].
    pub fn submit(&self, job: CountJob) -> Result<JobHandle, ServiceError> {
        self.submit_inner(job, None)
    }

    /// [`submit`](Service::submit) with a progress watcher: `progress` is
    /// invoked on the worker thread after every completed chunk of trials,
    /// carrying the anytime [`Estimate`](sgc_core::Estimate) over the
    /// trials run so far (see [`ChunkUpdate`]).
    ///
    /// Watchers fire only when the job actually computes — a submission
    /// answered from the result cache (or joined onto an identical
    /// in-flight computation) goes straight to its final output, and batch
    /// members routed through the batched executor have no chunk
    /// boundaries. Every update is delivered strictly before the handle is
    /// fulfilled, so a caller that streams updates and then waits observes
    /// them in order.
    ///
    /// This is the serving primitive behind the `sgc-net` wire protocol's
    /// streamed estimate frames.
    ///
    /// # Errors
    /// Exactly those of [`submit`](Service::submit).
    pub fn submit_with_progress(
        &self,
        job: CountJob,
        progress: ProgressFn,
    ) -> Result<JobHandle, ServiceError> {
        self.submit_inner(job, Some(progress))
    }

    fn submit_inner(
        &self,
        mut job: CountJob,
        progress: Option<ProgressFn>,
    ) -> Result<JobHandle, ServiceError> {
        if let Some(precision) = &job.precision {
            precision.validate()?;
        }
        // Trace IDs are minted at submission (unless the client propagated
        // one over the wire), so even a rejected or cancelled job has an
        // identity in the logs.
        if job.trace_id.is_none() {
            job.trace_id = Some(sgc_obs::next_trace_id());
        }
        let state = Arc::new(JobState::with_progress(progress));
        {
            let mut queue = self.shared.lock_queue();
            if queue.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            if queue.member_count() >= self.shared.queue_capacity {
                Counters::bump(&self.shared.counters.jobs_rejected);
                return Err(ServiceError::QueueFull {
                    capacity: self.shared.queue_capacity,
                });
            }
            Counters::bump(&self.shared.counters.jobs_submitted);
            queue.jobs.push_back(QueueEntry::Single(QueuedJob {
                job,
                state: Arc::clone(&state),
            }));
        }
        self.shared.available.notify_one();
        Ok(JobHandle { state })
    }

    /// Submits a batch of jobs for processing as one unit, returning one
    /// handle per member (in submission order).
    ///
    /// Admission is atomic: either every member fits within the queue
    /// capacity or the whole batch is rejected with
    /// [`ServiceError::QueueFull`] — a batch cannot be half-admitted. One
    /// worker then picks the batch up and routes every member through the
    /// single-flight result cache under its own canonical key (so batch
    /// members join or serve identical solo jobs and vice versa);
    /// fixed-budget members that miss the cache execute together through
    /// [`Engine::count_batch`], sharing colorings and deduplicated DP runs,
    /// while precision-targeted members keep their adaptive early-stop
    /// loop. Every member's output is bit-identical to a solo submission
    /// of the same job.
    ///
    /// ```
    /// use sgc_graph::GraphBuilder;
    /// use sgc_query::catalog;
    /// use sgc_service::{BatchJob, CountJob, Service};
    /// use std::sync::Arc;
    ///
    /// let mut b = GraphBuilder::new(6);
    /// b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
    /// let service = Service::new(Arc::new(b.build()));
    ///
    /// let batch = BatchJob::new()
    ///     .push(CountJob::new(catalog::triangle()).seed(3).budget(8))
    ///     .push(CountJob::new(catalog::cycle(4)).seed(3).budget(8));
    /// let handles = service.submit_batch(batch).unwrap();
    /// for handle in handles {
    ///     assert!(handle.wait().unwrap().trials_run > 0);
    /// }
    /// ```
    ///
    /// # Errors
    /// [`ServiceError::QueueFull`] when the members would overflow the
    /// queue, [`ServiceError::ShuttingDown`] after shutdown,
    /// [`ServiceError::InvalidPrecision`] for an unusable member target.
    /// Counting-level failures are reported through the member handles.
    pub fn submit_batch(&self, batch: BatchJob) -> Result<Vec<JobHandle>, ServiceError> {
        self.submit_batch_inner(batch, Vec::new())
    }

    /// [`submit_batch`](Service::submit_batch) with one optional progress
    /// watcher per member (`progress` may be shorter than the batch;
    /// missing tails mean "no watcher"). Watchers follow the
    /// [`submit_with_progress`](Service::submit_with_progress) contract;
    /// note that fixed-budget members executed through the batched engine
    /// path have no chunk boundaries and therefore emit no updates, while
    /// precision-targeted members stream one update per adaptive chunk.
    ///
    /// # Errors
    /// Exactly those of [`submit_batch`](Service::submit_batch).
    pub fn submit_batch_with_progress(
        &self,
        batch: BatchJob,
        progress: Vec<Option<ProgressFn>>,
    ) -> Result<Vec<JobHandle>, ServiceError> {
        self.submit_batch_inner(batch, progress)
    }

    fn submit_batch_inner(
        &self,
        batch: BatchJob,
        progress: Vec<Option<ProgressFn>>,
    ) -> Result<Vec<JobHandle>, ServiceError> {
        for job in batch.jobs() {
            if let Some(precision) = &job.precision {
                precision.validate()?;
            }
        }
        let mut jobs = batch.into_jobs();
        for job in &mut jobs {
            if job.trace_id.is_none() {
                job.trace_id = Some(sgc_obs::next_trace_id());
            }
        }
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let mut progress = progress.into_iter();
        let states: Vec<Arc<JobState>> = jobs
            .iter()
            .map(|_| Arc::new(JobState::with_progress(progress.next().flatten())))
            .collect();
        {
            let mut queue = self.shared.lock_queue();
            if queue.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            if queue.member_count() + jobs.len() > self.shared.queue_capacity {
                Counters::add(&self.shared.counters.jobs_rejected, jobs.len() as u64);
                return Err(ServiceError::QueueFull {
                    capacity: self.shared.queue_capacity,
                });
            }
            Counters::add(&self.shared.counters.jobs_submitted, jobs.len() as u64);
            Counters::bump(&self.shared.counters.batches_submitted);
            queue.jobs.push_back(QueueEntry::Batch(
                jobs.into_iter()
                    .zip(&states)
                    .map(|(job, state)| QueuedJob {
                        job,
                        state: Arc::clone(state),
                    })
                    .collect(),
            ));
        }
        self.shared.available.notify_one();
        Ok(states
            .into_iter()
            .map(|state| JobHandle { state })
            .collect())
    }

    /// Submits a job and blocks until it completes — submission and
    /// [`JobHandle::wait`] in one call.
    pub fn run(&self, job: CountJob) -> Result<JobOutput, ServiceError> {
        self.submit(job)?.wait()
    }

    /// Submits a batch and blocks until every member completes, returning
    /// each member's outcome in submission order.
    ///
    /// # Errors
    /// The batch-level admission errors of
    /// [`submit_batch`](Service::submit_batch); per-member counting
    /// failures are the inner `Result`s.
    pub fn run_batch(
        &self,
        batch: BatchJob,
    ) -> Result<Vec<Result<JobOutput, ServiceError>>, ServiceError> {
        Ok(self
            .submit_batch(batch)?
            .into_iter()
            .map(JobHandle::wait)
            .collect())
    }

    /// The root version: the bound graph itself, before any delta. Its id
    /// equals the graph fingerprint, so counting at the root shares cache
    /// slots with plain [`submit`](Service::submit) jobs.
    pub fn root_version(&self) -> VersionId {
        self.shared
            .dynamic
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .root()
    }

    /// The current head version — where [`apply_delta`](Service::apply_delta)
    /// chains the next delta.
    pub fn head_version(&self) -> VersionId {
        self.shared
            .dynamic
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .head()
    }

    /// Whether the service holds `version` in its chain.
    pub fn has_version(&self, version: VersionId) -> bool {
        self.shared
            .dynamic
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .contains(version)
    }

    /// Applies an edge delta to the head snapshot, minting a new version,
    /// and synchronously re-emits a fresh estimate chunk to every live
    /// [`watch`](Service::watch) subscription at the new version (identical
    /// watch jobs share one computation through the single-flight cache).
    /// Returns the new head version id.
    ///
    /// The delta applies copy-on-write over the head's CSR segments:
    /// untouched segments are shared, and versions already minted are
    /// immutable — counting at an old version keeps working after any
    /// number of deltas.
    ///
    /// # Errors
    /// [`ServiceError::Delta`] when the snapshot layer rejects the delta
    /// (the graph is unchanged), [`ServiceError::ShuttingDown`] after
    /// shutdown.
    pub fn apply_delta(&self, delta: &EdgeDelta) -> Result<VersionId, ServiceError> {
        if self.shared.lock_queue().shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        let version = {
            let mut dynamic = self
                .shared
                .dynamic
                .write()
                .unwrap_or_else(|p| p.into_inner());
            dynamic.apply_to_head(delta)?
        };
        notify_watchers(&self.shared, version);
        Ok(version)
    }

    /// Submits a job pinned to graph version `version` (see
    /// [`apply_delta`](Service::apply_delta)). Admission follows
    /// [`submit`](Service::submit); the job runs through the delta-aware
    /// incremental runtime — shards the version's delta cannot have touched
    /// replay their retained partial sums — and its output is bit-identical
    /// to a from-scratch run on the version's materialized graph.
    ///
    /// The version is resolved when the job runs, not at admission: an
    /// unknown version reports [`ServiceError::UnknownVersion`] through the
    /// handle.
    ///
    /// # Errors
    /// Exactly those of [`submit`](Service::submit).
    pub fn submit_at(&self, version: VersionId, job: CountJob) -> Result<JobHandle, ServiceError> {
        self.submit_at_inner(version, job, None)
    }

    /// [`submit_at`](Service::submit_at) with a progress watcher, following
    /// the [`submit_with_progress`](Service::submit_with_progress)
    /// contract: one update per completed chunk, each bit-identical to a
    /// fixed-budget run of exactly that many trials at that version.
    pub fn submit_at_with_progress(
        &self,
        version: VersionId,
        job: CountJob,
        progress: ProgressFn,
    ) -> Result<JobHandle, ServiceError> {
        self.submit_at_inner(version, job, Some(progress))
    }

    fn submit_at_inner(
        &self,
        version: VersionId,
        mut job: CountJob,
        progress: Option<ProgressFn>,
    ) -> Result<JobHandle, ServiceError> {
        if let Some(precision) = &job.precision {
            precision.validate()?;
        }
        if job.trace_id.is_none() {
            job.trace_id = Some(sgc_obs::next_trace_id());
        }
        let state = Arc::new(JobState::with_progress(progress));
        {
            let mut queue = self.shared.lock_queue();
            if queue.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            if queue.member_count() >= self.shared.queue_capacity {
                Counters::bump(&self.shared.counters.jobs_rejected);
                return Err(ServiceError::QueueFull {
                    capacity: self.shared.queue_capacity,
                });
            }
            Counters::bump(&self.shared.counters.jobs_submitted);
            queue.jobs.push_back(QueueEntry::Versioned(
                version,
                QueuedJob {
                    job,
                    state: Arc::clone(&state),
                },
            ));
        }
        self.shared.available.notify_one();
        Ok(JobHandle { state })
    }

    /// Counts at a version and blocks: [`submit_at`](Service::submit_at)
    /// plus [`JobHandle::wait`] in one call.
    pub fn count_at(&self, version: VersionId, job: CountJob) -> Result<JobOutput, ServiceError> {
        self.submit_at(version, job)?.wait()
    }

    /// Registers a live watch: `callback` receives an initial estimate
    /// chunk for `job` at the current head (computed synchronously, on this
    /// thread), then a fresh version-tagged chunk every time
    /// [`apply_delta`](Service::apply_delta) lands a new version. Re-counts
    /// ride the incremental runtime, so a small delta re-emits after
    /// recomputing only its invalidation ball.
    ///
    /// Emissions run on the thread that applies the delta, serially across
    /// watchers; identical watch jobs (and identical `submit_at` jobs) share
    /// one computation through the single-flight cache. This is the serving
    /// primitive behind the `sgc-net` `watch` verb.
    ///
    /// # Errors
    /// [`ServiceError::InvalidPrecision`] for an unusable target,
    /// [`ServiceError::ShuttingDown`] after shutdown, and any counting
    /// error of the initial run (a watch that cannot produce its first
    /// chunk is not registered).
    pub fn watch(&self, mut job: CountJob, callback: WatchFn) -> Result<WatchHandle, ServiceError> {
        if let Some(precision) = &job.precision {
            precision.validate()?;
        }
        if job.trace_id.is_none() {
            job.trace_id = Some(sgc_obs::next_trace_id());
        }
        if self.shared.lock_queue().shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        let id = self.shared.watch_ids.fetch_add(1, Ordering::Relaxed) + 1;
        let cancelled = Arc::new(AtomicBool::new(false));
        // The initial emission and the registration happen under the
        // watchers lock, atomically with respect to `notify_watchers`: a
        // delta landing concurrently either waits and then re-emits to this
        // watcher, or finished notifying before the initial run — in which
        // case the initial emission already observes its version. Either
        // way a new watch cannot miss a version.
        {
            let mut watchers = self
                .shared
                .watchers
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            let head = self.head_version();
            let output = run_versioned_now(&self.shared, head, &job)?;
            callback(
                head,
                &ChunkUpdate {
                    trials_run: output.trials_run,
                    budget: output.budget,
                    estimate: output.estimate,
                },
            );
            watchers.push(Watcher {
                id,
                job,
                callback,
                cancelled: Arc::clone(&cancelled),
            });
        }
        Ok(WatchHandle { id, cancelled })
    }

    /// Removes a watch subscription by id (see [`WatchHandle::id`]).
    /// Unknown ids are a no-op. [`WatchHandle::cancel`] is the handle-side
    /// equivalent.
    pub fn unwatch(&self, id: u64) {
        self.shared
            .watchers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .retain(|w| w.id != id);
    }

    /// Live watch subscriptions (cancelled-but-unpruned entries included).
    pub fn watch_count(&self) -> usize {
        self.shared
            .watchers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// A snapshot of the service counters.
    pub fn metrics(&self) -> ServiceMetrics {
        let queue_depth = self.shared.lock_queue().member_count();
        self.shared.counters.snapshot(
            queue_depth,
            self.shared.cache.ready_entries(),
            self.shared.cache.evictions(),
        )
    }

    /// The unified metrics exposition: publishes the current
    /// [`ServiceMetrics`] snapshot into the process-wide `sgc-obs` registry
    /// under `service_*` names (as gauges — the snapshot is already
    /// cumulative) and renders the whole registry as sorted `name value`
    /// lines. This is the payload of the `metrics` net verb.
    pub fn exposition(&self) -> String {
        let snapshot = self.metrics();
        let registry = sgc_obs::global();
        registry.gauge_set("service_jobs_submitted", snapshot.jobs_submitted);
        registry.gauge_set("service_batches_submitted", snapshot.batches_submitted);
        registry.gauge_set("service_jobs_rejected", snapshot.jobs_rejected);
        registry.gauge_set("service_jobs_completed", snapshot.jobs_completed);
        registry.gauge_set("service_jobs_cancelled", snapshot.jobs_cancelled);
        registry.gauge_set("service_queue_depth", snapshot.queue_depth as u64);
        registry.gauge_set("service_cache_hits", snapshot.cache_hits);
        registry.gauge_set("service_cache_misses", snapshot.cache_misses);
        registry.gauge_set("service_cached_results", snapshot.cached_results as u64);
        registry.gauge_set("service_trials_executed", snapshot.trials_executed);
        registry.gauge_set("service_trials_saved", snapshot.trials_saved);
        registry.gauge_set("service_cache_evictions", snapshot.cache_evictions);
        registry.render()
    }

    /// Renders the slow-query trace log (slowest recent job first); the
    /// payload of the `trace` net verb. See [`sgc_obs::TraceLog::render`]
    /// for the line format.
    pub fn trace_report(&self) -> String {
        self.shared.traces.render()
    }

    /// The shared engine the workers count with; exposed so callers can run
    /// ad-hoc requests against the very same preprocessing and plan cache
    /// the service uses.
    pub fn engine(&self) -> &Engine<'static> {
        &self.shared.engine
    }

    /// Stops accepting jobs, lets the workers drain everything already
    /// queued, and joins them. Jobs still queued when no worker exists to
    /// drain them (a zero-worker service) are failed with
    /// [`ServiceError::ShuttingDown`]. Idempotent, and callable through a
    /// shared reference so an `Arc<Service>` (the `sgc-net` server holds
    /// one per listener) can be shut down explicitly; concurrent calls
    /// serialize on the worker list and both return only after the workers
    /// are joined. Also invoked by `Drop`.
    pub fn shutdown(&self) {
        {
            let mut queue = self.shared.lock_queue();
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        {
            // Joining under the lock makes a concurrent second shutdown
            // wait here until the drain finishes, instead of racing ahead
            // and failing jobs a worker was still about to process.
            let mut workers = self.workers.lock().unwrap_or_else(|p| p.into_inner());
            for worker in workers.drain(..) {
                let _ = worker.join();
            }
        }
        let leftovers: Vec<QueueEntry> = {
            let mut queue = self.shared.lock_queue();
            queue.jobs.drain(..).collect()
        };
        for entry in leftovers {
            let members = match entry {
                QueueEntry::Single(queued) | QueueEntry::Versioned(_, queued) => vec![queued],
                QueueEntry::Batch(members) => members,
            };
            for queued in members {
                queued.state.fulfill(Err(ServiceError::ShuttingDown));
            }
        }
        // Nothing can complete an in-flight computation once the workers
        // are gone (only reachable if a worker died outside catch_unwind).
        self.shared.cache.fail_in_flight(ServiceError::ShuttingDown);
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The worker thread body: pop, process, repeat; drain the queue fully
/// before honoring shutdown.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let entry = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(entry) = queue.jobs.pop_front() {
                    break entry;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        match entry {
            QueueEntry::Single(queued) => process(&shared, queued),
            QueueEntry::Batch(members) => process_batch(&shared, members),
            QueueEntry::Versioned(version, queued) => process_versioned(&shared, version, queued),
        }
    }
}

/// Routes one job through the cache and, if this worker owns the
/// computation, runs the adaptive trial loop and fans the result out to
/// every identical job that joined in flight.
fn process(shared: &Shared, queued: QueuedJob) {
    if finish_if_cancelled_before_start(shared, &queued) {
        return;
    }
    if let Some((key, queued)) = route(shared, shared.graph_fingerprint, queued) {
        let result = run_traced(shared, &queued, |queued| {
            run_job(shared, &queued.job, &queued.state)
        });
        finish_compute(shared, key, &queued, result);
    }
}

/// Like [`process`], but pinned to a graph version: the job runs through
/// the delta-aware incremental runtime instead of the engine's trial
/// stream, and its cache key carries the version id in the fingerprint
/// slot (the root version id *is* the graph fingerprint, so root-version
/// jobs share slots with plain submissions — correct, because their
/// per-trial counts are bit-identical).
fn process_versioned(shared: &Shared, version: VersionId, queued: QueuedJob) {
    if finish_if_cancelled_before_start(shared, &queued) {
        return;
    }
    if let Some((key, queued)) = route(shared, version.as_u64(), queued) {
        let result = run_traced(shared, &queued, |queued| {
            run_versioned_job(shared, version, &queued.job, &queued.state)
        });
        finish_compute(shared, key, &queued, result);
    }
}

/// Runs one versioned job synchronously on the calling thread, through the
/// same single-flight cache the workers use: a cached result is served, an
/// identical in-flight computation is joined (blocking until it
/// completes), and otherwise this thread computes. The primitive behind
/// watch emissions.
fn run_versioned_now(
    shared: &Shared,
    version: VersionId,
    job: &CountJob,
) -> Result<JobOutput, ServiceError> {
    let state = Arc::new(JobState::with_progress(None));
    let queued = QueuedJob {
        job: job.clone(),
        state: Arc::clone(&state),
    };
    if let Some((key, queued)) = route(shared, version.as_u64(), queued) {
        let result = run_traced(shared, &queued, |queued| {
            run_versioned_job(shared, version, &queued.job, &queued.state)
        });
        finish_compute(shared, key, &queued, result);
    }
    JobHandle { state }.wait()
}

/// Re-emits a fresh estimate chunk at `version` to every live watcher.
/// Cancelled watchers are pruned first; identical watch jobs dedupe
/// through the single-flight cache. A watcher whose job fails at this
/// version (it cannot — jobs are validated by their initial emission —
/// except through a worker panic) skips the emission rather than killing
/// the delta.
fn notify_watchers(shared: &Shared, version: VersionId) {
    let live: Vec<(CountJob, WatchFn, Arc<AtomicBool>)> = {
        let mut watchers = shared.watchers.lock().unwrap_or_else(|p| p.into_inner());
        watchers.retain(|w| !w.cancelled.load(Ordering::Relaxed));
        watchers
            .iter()
            .map(|w| {
                (
                    w.job.clone(),
                    Arc::clone(&w.callback),
                    Arc::clone(&w.cancelled),
                )
            })
            .collect()
    };
    for (job, callback, cancelled) in live {
        if cancelled.load(Ordering::Relaxed) {
            continue;
        }
        if let Ok(output) = run_versioned_now(shared, version, &job) {
            if !cancelled.load(Ordering::Relaxed) {
                callback(
                    version,
                    &ChunkUpdate {
                        trials_run: output.trials_run,
                        budget: output.budget,
                        estimate: output.estimate,
                    },
                );
            }
        }
    }
}

/// Runs one owned computation with observability around it: the worker's
/// per-stage accumulator is scoped to the job, a panic in the counting code
/// neither kills the worker nor strands the jobs joined onto this
/// computation (the span stack self-heals during unwinding), and the
/// finished job lands in the slow-query trace log.
fn run_traced(
    shared: &Shared,
    queued: &QueuedJob,
    run: impl FnOnce(&QueuedJob) -> Result<JobOutput, ServiceError>,
) -> Result<JobOutput, ServiceError> {
    let _pause = (!shared.obs).then(sgc_obs::suspend);
    let started = std::time::Instant::now();
    sgc_obs::start_job();
    let result =
        catch_unwind(AssertUnwindSafe(|| run(queued))).unwrap_or(Err(ServiceError::WorkerLost));
    let stages = sgc_obs::end_job();
    if shared.obs && sgc_obs::enabled() {
        shared.traces.record(sgc_obs::JobTrace {
            trace_id: queued.job.trace_id.unwrap_or(0),
            label: job_label(&queued.job),
            seed: queued.job.seed,
            trials_run: result.as_ref().map(|o| o.trials_run as u64).unwrap_or(0),
            total_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            outcome: job_outcome(&result),
            stages,
        });
    }
    result
}

/// A short human label for the trace log: query shape plus algorithm
/// (`"4n4e/DB"` = 4 nodes, 4 edges, Degree Based). The job's pattern text
/// is not retained, so the shape is the identity the log can offer.
fn job_label(job: &CountJob) -> String {
    format!(
        "{}n{}e/{}",
        job.query.num_nodes(),
        job.query.num_edges(),
        job.algorithm.short_name()
    )
}

/// Maps a finished computation to the trace log's outcome word.
fn job_outcome(result: &Result<JobOutput, ServiceError>) -> &'static str {
    match result {
        Ok(output) => match output.stop {
            StopReason::PrecisionMet => "precision_met",
            StopReason::BudgetExhausted => "budget_exhausted",
            StopReason::Cancelled => "cancelled",
        },
        Err(ServiceError::Cancelled) => "cancelled",
        Err(_) => "error",
    }
}

/// Fails a job whose cancellation arrived while it was still queued, before
/// it ever touched the cache or ran a trial. Returns whether it did.
fn finish_if_cancelled_before_start(shared: &Shared, queued: &QueuedJob) -> bool {
    if !queued.state.is_cancelled() {
        return false;
    }
    Counters::bump(&shared.counters.jobs_cancelled);
    Counters::bump(&shared.counters.jobs_completed);
    queued.state.fulfill(Err(ServiceError::Cancelled));
    true
}

/// Routes one job through the single-flight cache. Serves cache hits and
/// joins in-flight twins immediately; returns the key and job when this
/// worker owns the computation (the miss counter is already bumped).
///
/// Counters are always bumped BEFORE the corresponding handle is
/// fulfilled: once a caller's wait() returns, the metrics already account
/// for that job.
fn route(shared: &Shared, fingerprint: u64, queued: QueuedJob) -> Option<(JobKey, QueuedJob)> {
    let key = JobKey::new(fingerprint, &queued.job);
    let _pause = (!shared.obs).then(sgc_obs::suspend);
    let started = std::time::Instant::now();
    let claim = {
        let _span = sgc_obs::span(sgc_obs::Stage::Cache);
        shared.cache.claim(key.clone(), &queued.state)
    };
    match claim {
        Claim::Served(output) => {
            Counters::bump(&shared.counters.cache_hits);
            Counters::bump(&shared.counters.jobs_completed);
            if shared.obs && sgc_obs::enabled() {
                shared.traces.record(sgc_obs::JobTrace {
                    trace_id: queued.job.trace_id.unwrap_or(0),
                    label: job_label(&queued.job),
                    seed: queued.job.seed,
                    trials_run: output.trials_run as u64,
                    total_ns: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    outcome: "cache_hit",
                    stages: sgc_obs::StageNanos::default(),
                });
            }
            queued.state.fulfill(Ok(output));
            None
        }
        Claim::Joined => {
            // This worker is done with the job: the computation's owner
            // receives the handle from complete() and counts + fulfills it.
            None
        }
        Claim::Compute => {
            Counters::bump(&shared.counters.cache_misses);
            Some((key, queued))
        }
    }
}

/// Completes a computation this worker owned: updates the trial counters,
/// stores the result (successes only), and fulfills the owner plus every
/// joined twin.
fn finish_compute(
    shared: &Shared,
    key: JobKey,
    queued: &QueuedJob,
    result: Result<JobOutput, ServiceError>,
) {
    match &result {
        Ok(output) => {
            Counters::add(&shared.counters.trials_executed, output.trials_run as u64);
            if output.stop == StopReason::Cancelled {
                // A cancelled job's unspent budget was taken away, not
                // saved by adaptive stopping; count it separately.
                Counters::bump(&shared.counters.jobs_cancelled);
            } else {
                Counters::add(
                    &shared.counters.trials_saved,
                    output.budget.saturating_sub(output.trials_run) as u64,
                );
            }
        }
        Err(ServiceError::Cancelled) => Counters::bump(&shared.counters.jobs_cancelled),
        Err(_) => {}
    }
    let waiters = shared.cache.complete(key, &result);
    // A cancellation belongs to the job that asked for it: twins that
    // joined this computation never cancelled anything, so handing them the
    // truncated partial output as a success would let one caller silently
    // degrade another's result. They are failed with `Cancelled` instead —
    // retrying recomputes, since cancelled outputs are never cached.
    let cancelled_partial = matches!(&result, Ok(output) if output.stop == StopReason::Cancelled);
    // Joined twins are cache hits only when something was actually
    // served from the cache: on an error (or a cancelled partial that is
    // deliberately not served to them) nothing is cached and every joiner
    // receives a failure, so counting them as hits would inflate the hit
    // rate while cached_results stays 0.
    if result.is_ok() && !cancelled_partial {
        Counters::add(&shared.counters.cache_hits, waiters.len() as u64);
    }
    Counters::add(&shared.counters.jobs_completed, 1 + waiters.len() as u64);
    queued.state.fulfill(result.clone());
    for waiter in waiters {
        let served = if cancelled_partial {
            Counters::bump(&shared.counters.jobs_cancelled);
            Err(ServiceError::Cancelled)
        } else {
            result.clone().map(|mut output| {
                output.from_cache = true;
                output
            })
        };
        waiter.fulfill(served);
    }
}

/// Processes a batch entry: routes every member through the cache, runs the
/// cache-missing fixed-budget members through the engine's batched executor
/// (shared colorings, deduplicated DP runs), and the precision-targeted
/// members through their individual adaptive loops.
fn process_batch(shared: &Shared, members: Vec<QueuedJob>) {
    let computes: Vec<(JobKey, QueuedJob)> = members
        .into_iter()
        .filter(|queued| !finish_if_cancelled_before_start(shared, queued))
        .filter_map(|queued| route(shared, shared.graph_fingerprint, queued))
        .collect();
    // Early stopping is an individual contract (each job stops on its own
    // confidence interval), so precision-targeted members keep the solo
    // adaptive loop; fixed-budget members share the batched executor.
    let (adaptive, fixed): (Vec<_>, Vec<_>) = computes
        .into_iter()
        .partition(|(_, queued)| queued.job.precision.is_some());
    for (key, queued) in adaptive {
        let result = run_traced(shared, &queued, |queued| {
            run_job(shared, &queued.job, &queued.state)
        });
        finish_compute(shared, key, &queued, result);
    }
    if fixed.is_empty() {
        return;
    }
    match catch_unwind(AssertUnwindSafe(|| run_jobs_batched(shared, &fixed))) {
        Ok(Ok(outputs)) => {
            for ((key, queued), output) in fixed.into_iter().zip(outputs) {
                // Batched members have no per-job stage breakdown (the
                // batch shares colorings and DP runs), but they still get
                // a slow-query entry under their own trace ID.
                if shared.obs && sgc_obs::enabled() {
                    shared.traces.record(sgc_obs::JobTrace {
                        trace_id: queued.job.trace_id.unwrap_or(0),
                        label: job_label(&queued.job),
                        seed: queued.job.seed,
                        trials_run: output.trials_run as u64,
                        total_ns: (output.estimate.total_seconds * 1e9) as u64,
                        outcome: "budget_exhausted",
                        stages: sgc_obs::StageNanos::default(),
                    });
                }
                finish_compute(shared, key, &queued, Ok(output));
            }
        }
        // A batch-level validation error (one bad member fails
        // `count_batch` for everyone): fall back to individual runs so
        // only the offending members report the failure.
        Ok(Err(_)) => {
            for (key, queued) in fixed {
                let result = run_traced(shared, &queued, |queued| {
                    run_job(shared, &queued.job, &queued.state)
                });
                finish_compute(shared, key, &queued, result);
            }
        }
        // A panic inside the batched executor: fail every owned member so
        // nothing joined onto them is stranded.
        Err(_) => {
            for (key, queued) in fixed {
                finish_compute(shared, key, &queued, Err(ServiceError::WorkerLost));
            }
        }
    }
}

/// Runs the cache-missing fixed-budget members of one batch through
/// [`Engine::count_batch`]: one shared coloring pass per trial step, one DP
/// run per structurally identical member. Outputs are bit-identical to the
/// members' solo runs (asserted by `tests/batch.rs`).
fn run_jobs_batched(
    shared: &Shared,
    fixed: &[(JobKey, QueuedJob)],
) -> Result<Vec<JobOutput>, ServiceError> {
    let requests: Vec<CountRequest<'_, 'static, '_>> = fixed
        .iter()
        .map(|(_, queued)| {
            shared
                .engine
                .count(&queued.job.query)
                .algorithm(queued.job.algorithm)
                .seed(queued.job.seed)
                .trials(queued.job.budget)
                .parallel(shared.trial_parallelism)
                .obs(shared.obs)
        })
        .collect();
    let batch = shared.engine.count_batch(&requests)?;
    Ok(fixed
        .iter()
        .zip(batch.estimates)
        .map(|((_, queued), estimate)| JobOutput {
            trials_run: estimate.per_trial.len(),
            budget: queued.job.budget,
            stop: StopReason::BudgetExhausted,
            from_cache: false,
            estimate,
        })
        .collect())
}

/// The adaptive trial loop of one job: run chunks through the incremental
/// engine API, stop at the precision target, the budget, or a cancellation
/// (checked once per chunk boundary — cancellation never interrupts a
/// chunk mid-trial, so the trials that did run keep the seed+i contract).
fn run_job(shared: &Shared, job: &CountJob, state: &JobState) -> Result<JobOutput, ServiceError> {
    if state.is_cancelled() {
        return Err(ServiceError::Cancelled);
    }
    let mut stream = shared
        .engine
        .count(&job.query)
        .algorithm(job.algorithm)
        .seed(job.seed)
        .parallel(shared.trial_parallelism)
        .obs(shared.obs)
        .estimate_incremental()?;
    let mut stop = StopReason::BudgetExhausted;
    while stream.trials_run() < job.budget {
        let chunk = shared.chunk_trials.min(job.budget - stream.trials_run());
        stream.run_chunk(chunk);
        if state.has_progress() {
            // The snapshot is the stream's own anytime estimate, so every
            // update a watcher sees is bit-identical to a batch run of
            // exactly that many trials (the invariant `sgc-net` streams
            // over the wire).
            state.emit_progress(&ChunkUpdate {
                trials_run: stream.trials_run(),
                budget: job.budget,
                estimate: stream.estimate()?,
            });
        }
        if let Some(precision) = &job.precision {
            if stream.relative_half_width(precision.confidence) <= precision.target {
                stop = StopReason::PrecisionMet;
                break;
            }
        }
        if state.is_cancelled() {
            stop = StopReason::Cancelled;
            break;
        }
    }
    let trials_run = stream.trials_run();
    // A zero budget runs zero trials; the stream reports it as the same
    // typed error the batch API uses.
    let estimate = stream.estimate()?;
    Ok(JobOutput {
        estimate,
        trials_run,
        budget: job.budget,
        stop,
        from_cache: false,
    })
}

/// The adaptive trial loop of one *versioned* job: chunks run through the
/// delta-aware incremental runtime ([`sgc_dyn::run_trials`]) instead of
/// the engine's trial stream, then fold into an estimate with the very
/// same [`summarize_trials`] the engine uses — which is what makes a
/// versioned output bit-identical to a from-scratch engine run on the
/// version's materialized graph (pinned by `tests/dynamic.rs`).
///
/// The version-chain read lock is held per chunk, not per job, so
/// [`Service::apply_delta`] interleaves with long counts at chunk
/// granularity.
fn run_versioned_job(
    shared: &Shared,
    version: VersionId,
    job: &CountJob,
    state: &JobState,
) -> Result<JobOutput, ServiceError> {
    if state.is_cancelled() {
        return Err(ServiceError::Cancelled);
    }
    if job.budget == 0 {
        return Err(ServiceError::Count(SgcError::ZeroTrials));
    }
    let tree = sgc_query::heuristic_plan(&job.query).map_err(SgcError::Query)?;
    let started = std::time::Instant::now();
    let mut per_trial: Vec<u64> = Vec::new();
    let mut stop = StopReason::BudgetExhausted;
    while per_trial.len() < job.budget {
        let chunk = shared.chunk_trials.min(job.budget - per_trial.len());
        let start = per_trial.len();
        let spec = TrialSpec {
            query: &job.query,
            tree: &tree,
            algorithm: job.algorithm,
            seed: job.seed,
            num_shards: shared.dyn_shards,
            kernel: KernelKind::default(),
        };
        {
            let dynamic = shared.dynamic.read().unwrap_or_else(|p| p.into_inner());
            let outcome = sgc_dyn::run_trials(
                &dynamic,
                &shared.partials,
                version,
                &spec,
                start..start + chunk,
                &shared.pool,
            )?;
            per_trial.extend(outcome.per_trial);
        }
        if state.has_progress() || job.precision.is_some() {
            let estimate = summarize_trials(
                per_trial.clone(),
                &job.query,
                started.elapsed().as_secs_f64(),
            );
            if state.has_progress() {
                state.emit_progress(&ChunkUpdate {
                    trials_run: per_trial.len(),
                    budget: job.budget,
                    estimate: estimate.clone(),
                });
            }
            if let Some(precision) = &job.precision {
                if estimate.relative_half_width(precision.confidence) <= precision.target {
                    stop = StopReason::PrecisionMet;
                    break;
                }
            }
        }
        if state.is_cancelled() {
            stop = StopReason::Cancelled;
            break;
        }
    }
    let trials_run = per_trial.len();
    let estimate = summarize_trials(per_trial, &job.query, started.elapsed().as_secs_f64());
    Ok(JobOutput {
        estimate,
        trials_run,
        budget: job.budget,
        stop,
        from_cache: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CancelToken, Precision};
    use sgc_graph::GraphBuilder;
    use sgc_query::catalog;

    fn demo_graph() -> Arc<CsrGraph> {
        let mut b = GraphBuilder::new(10);
        b.extend_edges([
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (5, 6),
            (6, 1),
            (2, 7),
            (7, 8),
            (8, 3),
            (4, 9),
            (9, 0),
            (5, 2),
            (6, 3),
        ]);
        Arc::new(b.build())
    }

    fn small_service(workers: usize) -> Service {
        Service::with_config(
            demo_graph(),
            ServiceConfig {
                workers,
                queue_capacity: 16,
                chunk_trials: 4,
                trial_parallelism: false,
                obs: true,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn a_job_matches_the_batch_engine_api() {
        let service = small_service(2);
        let output = service
            .run(CountJob::new(catalog::triangle()).seed(11).budget(12))
            .unwrap();
        assert_eq!(output.trials_run, 12);
        assert_eq!(output.stop, StopReason::BudgetExhausted);
        assert!(!output.from_cache);
        let batch = service
            .engine()
            .count(&catalog::triangle())
            .trials(12)
            .seed(11)
            .estimate()
            .unwrap();
        assert_eq!(output.estimate.per_trial, batch.per_trial);
        assert_eq!(output.estimate.estimated_matches, batch.estimated_matches);
    }

    #[test]
    fn identical_resubmission_is_a_cache_hit_with_identical_bits() {
        let service = small_service(1);
        let job = CountJob::new(catalog::triangle()).seed(3).budget(8);
        let first = service.run(job.clone()).unwrap();
        let second = service.run(job).unwrap();
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(first.estimate.per_trial, second.estimate.per_trial);
        assert_eq!(
            first.estimate.estimated_matches.to_bits(),
            second.estimate.estimated_matches.to_bits()
        );
        let metrics = service.metrics();
        assert_eq!(metrics.cache_misses, 1);
        assert_eq!(metrics.cache_hits, 1);
        assert_eq!(metrics.cached_results, 1);
        assert_eq!(metrics.jobs_completed, 2);
    }

    #[test]
    fn zero_worker_service_exposes_admission_control_deterministically() {
        let service = Service::with_config(
            demo_graph(),
            ServiceConfig {
                workers: 0,
                queue_capacity: 2,
                chunk_trials: 4,
                trial_parallelism: false,
                obs: true,
                ..ServiceConfig::default()
            },
        );
        let a = service.submit(CountJob::new(catalog::triangle())).unwrap();
        let _b = service.submit(CountJob::new(catalog::cycle(4))).unwrap();
        let err = service
            .submit(CountJob::new(catalog::triangle()).seed(99))
            .unwrap_err();
        assert_eq!(err, ServiceError::QueueFull { capacity: 2 });
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_submitted, 2);
        assert_eq!(metrics.jobs_rejected, 1);
        assert_eq!(metrics.queue_depth, 2);
        // Nobody drains a zero-worker queue: shutdown fails the stragglers.
        service.shutdown();
        assert!(matches!(a.wait(), Err(ServiceError::ShuttingDown)));
        let err = service.submit(CountJob::new(catalog::triangle()));
        assert_eq!(err.unwrap_err(), ServiceError::ShuttingDown);
    }

    #[test]
    fn counting_errors_reach_the_handle_as_typed_errors() {
        let service = small_service(1);
        // Treewidth > 2: rejected by the planner inside the worker.
        let mut k4 = sgc_query::QueryGraph::new(4);
        for a in 0..4u8 {
            for b in (a + 1)..4 {
                k4.add_edge(a, b).unwrap();
            }
        }
        let err = service.run(CountJob::new(k4)).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Count(sgc_core::SgcError::Query(_))
        ));
        // Zero budget: zero trials.
        let err = service
            .run(CountJob::new(catalog::triangle()).budget(0))
            .unwrap_err();
        assert_eq!(err, ServiceError::Count(sgc_core::SgcError::ZeroTrials));
        // Invalid precision is rejected at submission.
        let err = service
            .submit(CountJob::new(catalog::triangle()).precision(Precision::within(0.0)))
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidPrecision { .. }));
        // Errors are not cached: no key holds a completed entry.
        assert_eq!(service.metrics().cached_results, 0);
    }

    #[test]
    fn failing_jobs_never_count_as_cache_hits() {
        let service = small_service(1);
        let mut k4 = sgc_query::QueryGraph::new(4);
        for a in 0..4u8 {
            for b in (a + 1)..4 {
                k4.add_edge(a, b).unwrap();
            }
        }
        let job = CountJob::new(k4);
        assert!(service.run(job.clone()).is_err());
        assert!(service.run(job).is_err());
        let metrics = service.metrics();
        // Errors are not cached, so the second identical job recomputed:
        // two misses, zero hits, nothing stored.
        assert_eq!(metrics.cache_misses, 2);
        assert_eq!(metrics.cache_hits, 0);
        assert_eq!(metrics.cached_results, 0);
        assert_eq!(metrics.jobs_completed, 2);
    }

    #[test]
    fn all_zero_counts_never_early_stop_as_a_precise_zero() {
        // A path graph has no triangles: every trial counts zero. A
        // precision-targeted job must not mistake that run of zeros for a
        // met target — it spends its whole budget and reports a zero
        // estimate with BudgetExhausted.
        let mut b = GraphBuilder::new(8);
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let service = Service::with_config(
            Arc::new(b.build()),
            ServiceConfig {
                workers: 1,
                queue_capacity: 4,
                chunk_trials: 4,
                trial_parallelism: false,
                obs: true,
                ..ServiceConfig::default()
            },
        );
        let output = service
            .run(
                CountJob::new(catalog::triangle())
                    .seed(5)
                    .budget(20)
                    .precision(Precision::within(0.5)),
            )
            .unwrap();
        assert_eq!(output.stop, StopReason::BudgetExhausted);
        assert_eq!(output.trials_run, 20);
        assert_eq!(output.estimate.estimated_matches, 0.0);
        assert_eq!(service.metrics().trials_saved, 0);
    }

    #[test]
    fn batched_members_match_solo_submissions_bitwise() {
        let service = small_service(1);
        let batch = BatchJob::new()
            .push(CountJob::new(catalog::triangle()).seed(21).budget(10))
            .push(CountJob::new(catalog::cycle(4)).seed(21).budget(10))
            .push(CountJob::new(catalog::glet1()).seed(4).budget(6));
        let outputs: Vec<JobOutput> = service
            .run_batch(batch)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(outputs.len(), 3);
        // A separate service (fresh cache) computes each job solo: the
        // batched members must be bit-identical.
        let solo_service = small_service(1);
        for (output, job) in outputs.iter().zip([
            CountJob::new(catalog::triangle()).seed(21).budget(10),
            CountJob::new(catalog::cycle(4)).seed(21).budget(10),
            CountJob::new(catalog::glet1()).seed(4).budget(6),
        ]) {
            let solo = solo_service.run(job).unwrap();
            assert_eq!(output.estimate.per_trial, solo.estimate.per_trial);
            assert_eq!(
                output.estimate.estimated_matches.to_bits(),
                solo.estimate.estimated_matches.to_bits()
            );
            assert_eq!(output.trials_run, solo.trials_run);
            assert_eq!(output.stop, StopReason::BudgetExhausted);
        }
        assert_eq!(service.metrics().batches_submitted, 1);
        assert_eq!(service.metrics().jobs_submitted, 3);
    }

    #[test]
    fn batch_results_fan_into_the_single_flight_cache() {
        let service = small_service(1);
        let job = CountJob::new(catalog::triangle()).seed(8).budget(8);
        // Duplicate members inside one batch: the second joins the first
        // in flight through the cache and is served bit-identically.
        let results = service
            .run_batch(BatchJob::from_jobs(vec![job.clone(), job.clone()]))
            .unwrap();
        let first = results[0].as_ref().unwrap();
        let second = results[1].as_ref().unwrap();
        assert_eq!(first.estimate.per_trial, second.estimate.per_trial);
        // A later solo submission of the same job is a cache hit on the
        // batched result.
        let solo = service.run(job).unwrap();
        assert!(solo.from_cache);
        assert_eq!(solo.estimate.per_trial, first.estimate.per_trial);
        let metrics = service.metrics();
        assert_eq!(metrics.cache_misses, 1, "the batch computed once");
        assert_eq!(metrics.cache_hits, 2, "the twin and the solo follow-up");
    }

    #[test]
    fn batch_admission_is_atomic_and_counts_members() {
        let service = Service::with_config(
            demo_graph(),
            ServiceConfig {
                workers: 0,
                queue_capacity: 4,
                chunk_trials: 4,
                trial_parallelism: false,
                obs: true,
                ..ServiceConfig::default()
            },
        );
        // Five members cannot fit a capacity-4 queue: nothing is admitted.
        let five = BatchJob::from_jobs(vec![CountJob::new(catalog::triangle()); 5]);
        assert_eq!(
            service.submit_batch(five).unwrap_err(),
            ServiceError::QueueFull { capacity: 4 }
        );
        assert_eq!(service.metrics().queue_depth, 0);
        assert_eq!(service.metrics().jobs_rejected, 5);
        // Three members fit; a further two-member batch would overflow.
        let handles = service
            .submit_batch(BatchJob::from_jobs(vec![
                CountJob::new(catalog::triangle());
                3
            ]))
            .unwrap();
        assert_eq!(handles.len(), 3);
        assert_eq!(service.metrics().queue_depth, 3);
        assert_eq!(
            service
                .submit_batch(BatchJob::from_jobs(vec![
                    CountJob::new(catalog::cycle(4));
                    2
                ]))
                .unwrap_err(),
            ServiceError::QueueFull { capacity: 4 }
        );
        // Empty batches are a no-op.
        assert!(service.submit_batch(BatchJob::new()).unwrap().is_empty());
        // Shutdown fails the still-queued batch members.
        service.shutdown();
        for handle in handles {
            assert!(matches!(handle.wait(), Err(ServiceError::ShuttingDown)));
        }
    }

    #[test]
    fn precision_members_keep_their_adaptive_loop_inside_a_batch() {
        let service = small_service(1);
        let adaptive = CountJob::new(catalog::triangle())
            .seed(1000)
            .budget(400)
            .precision(Precision::within(0.5));
        let fixed = CountJob::new(catalog::cycle(4)).seed(1000).budget(12);
        let results = service
            .run_batch(BatchJob::from_jobs(vec![adaptive.clone(), fixed]))
            .unwrap();
        let adaptive_out = results[0].as_ref().unwrap();
        assert_eq!(adaptive_out.stop, StopReason::PrecisionMet);
        assert!(adaptive_out.trials_run < adaptive_out.budget);
        // Bit-identical to the solo adaptive run (fresh cache).
        let solo = small_service(1).run(adaptive).unwrap();
        assert_eq!(adaptive_out.trials_run, solo.trials_run);
        assert_eq!(adaptive_out.estimate.per_trial, solo.estimate.per_trial);
        let fixed_out = results[1].as_ref().unwrap();
        assert_eq!(fixed_out.trials_run, 12);
        assert_eq!(fixed_out.stop, StopReason::BudgetExhausted);
    }

    #[test]
    fn a_bad_batch_member_fails_alone() {
        let service = small_service(1);
        let mut k4 = sgc_query::QueryGraph::new(4);
        for a in 0..4u8 {
            for b in (a + 1)..4 {
                k4.add_edge(a, b).unwrap();
            }
        }
        let results = service
            .run_batch(BatchJob::from_jobs(vec![
                CountJob::new(catalog::triangle()).seed(2).budget(6),
                CountJob::new(k4),
            ]))
            .unwrap();
        let good = results[0].as_ref().unwrap();
        assert_eq!(good.trials_run, 6);
        assert!(matches!(
            results[1],
            Err(ServiceError::Count(sgc_core::SgcError::Query(_)))
        ));
        // The healthy member is still bit-identical to its solo run.
        let solo = small_service(1)
            .run(CountJob::new(catalog::triangle()).seed(2).budget(6))
            .unwrap();
        assert_eq!(good.estimate.per_trial, solo.estimate.per_trial);
    }

    #[test]
    fn precision_target_stops_before_the_budget() {
        let service = small_service(1);
        // A very loose target on a triangle-rich graph: a handful of chunks
        // suffices, far below the 400-trial budget.
        let output = service
            .run(
                CountJob::new(catalog::triangle())
                    .seed(1000)
                    .budget(400)
                    .precision(Precision::within(0.5)),
            )
            .unwrap();
        assert_eq!(output.stop, StopReason::PrecisionMet);
        assert!(
            output.trials_run < output.budget,
            "expected early stop, ran {}/{}",
            output.trials_run,
            output.budget
        );
        // The precision the scheduler stopped on is reproducible from the
        // returned estimate.
        assert!(output.estimate.relative_half_width(0.95) <= 0.5);
        let metrics = service.metrics();
        assert_eq!(
            metrics.trials_saved,
            (output.budget - output.trials_run) as u64
        );
    }

    /// A progress callback that cancels the job's own token as soon as it
    /// fires: the first completed chunk triggers the cancellation, making
    /// the mid-run cancel deterministic without sleeps.
    fn cancel_on_first_chunk() -> (ProgressFn, Arc<Mutex<Option<CancelToken>>>) {
        let slot: Arc<Mutex<Option<CancelToken>>> = Arc::default();
        let shared = Arc::clone(&slot);
        let progress: ProgressFn = Arc::new(move |_update: &ChunkUpdate| {
            if let Some(token) = shared.lock().unwrap().as_ref() {
                token.cancel();
            }
        });
        (progress, slot)
    }

    #[test]
    fn cancelling_a_running_job_stops_at_a_chunk_boundary_with_a_partial_estimate() {
        let service = small_service(1);
        let budget = 50_000_000; // far beyond what can run before the cancel
        let (progress, slot) = cancel_on_first_chunk();
        let handle = service
            .submit_with_progress(
                CountJob::new(catalog::triangle()).seed(9).budget(budget),
                progress,
            )
            .unwrap();
        *slot.lock().unwrap() = Some(handle.cancel_token());
        let output = handle.wait().unwrap();
        assert_eq!(output.stop, StopReason::Cancelled);
        assert!(output.trials_run >= 4, "at least one chunk completes");
        assert!(output.trials_run < budget, "ran {}", output.trials_run);
        // The partial estimate honours the anytime contract: bit-identical
        // to a batch run of exactly the trials that completed.
        let replay = service
            .engine()
            .count(&catalog::triangle())
            .trials(output.trials_run)
            .seed(9)
            .estimate()
            .unwrap();
        assert_eq!(output.estimate.per_trial, replay.per_trial);
        // Cancelled outputs are never cached, so nothing is stored and a
        // resubmission would recompute.
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_cancelled, 1);
        assert_eq!(metrics.cached_results, 0);
        assert_eq!(metrics.cache_misses, 1);
    }

    #[test]
    fn cancelling_a_queued_job_fails_it_with_the_cancelled_error() {
        let service = small_service(1);
        // A blocker holds the only worker until its own first chunk cancels
        // it, guaranteeing the victim is still queued when *its* cancel
        // lands.
        let (progress, slot) = cancel_on_first_chunk();
        let blocker = service
            .submit_with_progress(
                CountJob::new(catalog::triangle())
                    .seed(1)
                    .budget(50_000_000),
                progress,
            )
            .unwrap();
        let victim = service
            .submit(CountJob::new(catalog::triangle()).seed(2).budget(8))
            .unwrap();
        victim.cancel();
        // Release the worker only after the victim is marked.
        *slot.lock().unwrap() = Some(blocker.cancel_token());
        assert_eq!(blocker.wait().unwrap().stop, StopReason::Cancelled);
        assert!(matches!(victim.wait(), Err(ServiceError::Cancelled)));
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_cancelled, 2);
        // The victim never computed: the only executed trials are the
        // blocker's.
        assert_eq!(metrics.cache_misses, 1);
    }

    #[test]
    fn twins_joined_onto_a_cancelled_computation_fail_instead_of_sharing_the_partial() {
        // A joined twin never asked to cancel: fulfilling it with the
        // owner's truncated output would let one caller silently degrade
        // another's result. The cache routing and completion are driven
        // directly (zero workers, so nothing races) to pin the in-flight
        // join deterministically.
        let service = small_service(0);
        let shared = &service.shared;
        let job = CountJob::new(catalog::triangle()).seed(9).budget(1000);
        let key = JobKey::new(shared.graph_fingerprint, &job);
        let owner = QueuedJob {
            job: job.clone(),
            state: Arc::new(JobState::with_progress(None)),
        };
        let twin = Arc::new(JobState::with_progress(None));
        assert!(matches!(
            shared.cache.claim(key.clone(), &owner.state),
            Claim::Compute
        ));
        assert!(matches!(
            shared.cache.claim(key.clone(), &twin),
            Claim::Joined
        ));
        // The owner's run was cancelled 8 trials into its 1000 budget.
        let estimate = shared
            .engine
            .count(&catalog::triangle())
            .seed(9)
            .trials(8)
            .estimate()
            .unwrap();
        let partial = JobOutput {
            estimate,
            trials_run: 8,
            budget: 1000,
            stop: StopReason::Cancelled,
            from_cache: false,
        };
        finish_compute(shared, key.clone(), &owner, Ok(partial));
        // The owner — whose cancellation it was — receives the partial.
        let owner_out = JobHandle { state: owner.state }.wait().unwrap();
        assert_eq!(owner_out.stop, StopReason::Cancelled);
        assert_eq!(owner_out.trials_run, 8);
        // The twin is failed, not served a result it never asked for.
        assert!(matches!(
            JobHandle { state: twin }.try_result(),
            Some(Err(ServiceError::Cancelled))
        ));
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_cancelled, 2, "owner and failed twin");
        assert_eq!(metrics.cache_hits, 0, "nothing was served from cache");
        assert_eq!(metrics.cached_results, 0, "partials are never stored");
        // The key is free again: a retry recomputes from scratch.
        assert!(matches!(
            shared
                .cache
                .claim(key, &Arc::new(JobState::with_progress(None))),
            Claim::Compute
        ));
    }

    #[test]
    fn cancel_after_completion_is_a_no_op() {
        let service = small_service(1);
        let handle = service
            .submit(CountJob::new(catalog::triangle()).seed(4).budget(8))
            .unwrap();
        // Wait for the result through a second identical submission, then
        // cancel the already-fulfilled handle: the output is unaffected.
        let settled = service
            .run(CountJob::new(catalog::triangle()).seed(4).budget(8))
            .unwrap();
        handle.cancel();
        let output = handle.wait().unwrap();
        assert_eq!(output.stop, StopReason::BudgetExhausted);
        assert_eq!(output.trials_run, 8);
        assert_eq!(output.estimate.per_trial, settled.estimate.per_trial);
        assert_eq!(service.metrics().jobs_cancelled, 0);
    }
}
