//! The counting service: bounded queue, worker pool, adaptive trial loop.
//!
//! One [`Service`] binds one data graph (through
//! [`Engine::from_shared`](sgc_core::Engine::from_shared), so the expensive
//! preprocessing runs exactly once) and serves concurrent [`CountJob`]s:
//!
//! * **admission control** — the work queue is bounded; a full queue rejects
//!   with [`ServiceError::QueueFull`] instead of growing without limit,
//! * **adaptive scheduling** — each job's trials run in fixed-size chunks
//!   through the engine's incremental
//!   [`TrialStream`](sgc_core::TrialStream); after every chunk the job's
//!   confidence interval is checked against its
//!   [`Precision`](crate::job::Precision) target and the job stops as soon
//!   as the target is met (or the budget runs out),
//! * **result caching** — deterministic jobs are memoized and
//!   single-flighted (see [`crate::cache`]); identical submissions are
//!   served without recomputation, bit-identically.

use crate::cache::{Claim, JobKey, ResultCache};
use crate::error::ServiceError;
use crate::job::{CountJob, JobHandle, JobOutput, JobState, StopReason};
use crate::metrics::{Counters, ServiceMetrics};
use sgc_core::Engine;
use sgc_graph::CsrGraph;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Construction-time configuration of a [`Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue. `0` is allowed and means "accept
    /// but never process" — useful for inspecting admission control; real
    /// deployments want at least 1.
    pub workers: usize,
    /// Maximum number of jobs waiting in the queue before submissions are
    /// rejected with [`ServiceError::QueueFull`].
    pub queue_capacity: usize,
    /// Trials per scheduling chunk: the granularity at which the adaptive
    /// loop re-checks a job's precision target. Clamped to at least 1.
    pub chunk_trials: usize,
    /// Whether each chunk's trials additionally fan out over the rayon pool.
    /// Off by default: the service's parallelism axis is *jobs across
    /// workers*, and nested per-trial threading mostly adds scheduling
    /// overhead. Results are bit-identical either way.
    pub trial_parallelism: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: 64,
            chunk_trials: 8,
            trial_parallelism: false,
        }
    }
}

/// One queued job: the description plus the completion slot its
/// [`JobHandle`] waits on.
struct QueuedJob {
    job: CountJob,
    state: Arc<JobState>,
}

/// Queue state guarded by one mutex: the jobs and the shutdown latch.
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    shutdown: bool,
}

/// Everything the workers share.
struct Shared {
    engine: Engine<'static>,
    graph_fingerprint: u64,
    queue_capacity: usize,
    chunk_trials: usize,
    trial_parallelism: bool,
    queue: Mutex<QueueState>,
    available: Condvar,
    cache: ResultCache,
    counters: Counters,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A concurrent counting service over one bound data graph.
///
/// See the [crate docs](crate) for the full tour and `Service::submit` for
/// the job lifecycle. Dropping the service shuts it down: queued jobs are
/// still drained by the workers, then the threads are joined.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts a service for `graph` with the default [`ServiceConfig`].
    ///
    /// Binding runs the engine's preprocessing pass once; every job shares
    /// it.
    pub fn new(graph: Arc<CsrGraph>) -> Self {
        Service::with_config(graph, ServiceConfig::default())
    }

    /// Starts a service for `graph` with an explicit configuration.
    pub fn with_config(graph: Arc<CsrGraph>, config: ServiceConfig) -> Self {
        let graph_fingerprint = graph.fingerprint();
        let shared = Arc::new(Shared {
            engine: Engine::from_shared(graph),
            graph_fingerprint,
            queue_capacity: config.queue_capacity,
            chunk_trials: config.chunk_trials.max(1),
            trial_parallelism: config.trial_parallelism,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            cache: ResultCache::new(),
            counters: Counters::default(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sgc-service-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn service worker thread")
            })
            .collect();
        Service { shared, workers }
    }

    /// Submits a job for asynchronous processing.
    ///
    /// Admission is the only blocking step (one short mutex acquisition):
    /// the call returns a [`JobHandle`] immediately and the worker pool
    /// picks the job up in FIFO order. If the job's determinism key matches
    /// a cached or in-flight result, the handle is fulfilled from that
    /// result without recomputation.
    ///
    /// # Errors
    /// [`ServiceError::QueueFull`] when the bounded queue is at capacity,
    /// [`ServiceError::ShuttingDown`] after [`shutdown`](Service::shutdown),
    /// [`ServiceError::InvalidPrecision`] for an unusable precision target.
    /// Counting-level failures (unplannable query, zero budget, …) are
    /// reported through the handle instead, as
    /// [`ServiceError::Count`].
    pub fn submit(&self, job: CountJob) -> Result<JobHandle, ServiceError> {
        if let Some(precision) = &job.precision {
            precision.validate()?;
        }
        let state = Arc::new(JobState::new());
        {
            let mut queue = self.shared.lock_queue();
            if queue.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            if queue.jobs.len() >= self.shared.queue_capacity {
                Counters::bump(&self.shared.counters.jobs_rejected);
                return Err(ServiceError::QueueFull {
                    capacity: self.shared.queue_capacity,
                });
            }
            Counters::bump(&self.shared.counters.jobs_submitted);
            queue.jobs.push_back(QueuedJob {
                job,
                state: Arc::clone(&state),
            });
        }
        self.shared.available.notify_one();
        Ok(JobHandle { state })
    }

    /// Submits a job and blocks until it completes — submission and
    /// [`JobHandle::wait`] in one call.
    pub fn run(&self, job: CountJob) -> Result<JobOutput, ServiceError> {
        self.submit(job)?.wait()
    }

    /// A snapshot of the service counters.
    pub fn metrics(&self) -> ServiceMetrics {
        let queue_depth = self.shared.lock_queue().jobs.len();
        self.shared
            .counters
            .snapshot(queue_depth, self.shared.cache.ready_entries())
    }

    /// The shared engine the workers count with; exposed so callers can run
    /// ad-hoc requests against the very same preprocessing and plan cache
    /// the service uses.
    pub fn engine(&self) -> &Engine<'static> {
        &self.shared.engine
    }

    /// Stops accepting jobs, lets the workers drain everything already
    /// queued, and joins them. Jobs still queued when no worker exists to
    /// drain them (a zero-worker service) are failed with
    /// [`ServiceError::ShuttingDown`]. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        {
            let mut queue = self.shared.lock_queue();
            if queue.shutdown && self.workers.is_empty() {
                return;
            }
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let leftovers: Vec<QueuedJob> = {
            let mut queue = self.shared.lock_queue();
            queue.jobs.drain(..).collect()
        };
        for queued in leftovers {
            queued.state.fulfill(Err(ServiceError::ShuttingDown));
        }
        // Nothing can complete an in-flight computation once the workers
        // are gone (only reachable if a worker died outside catch_unwind).
        self.shared.cache.fail_in_flight(ServiceError::ShuttingDown);
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The worker thread body: pop, process, repeat; drain the queue fully
/// before honoring shutdown.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let queued = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        process(&shared, queued);
    }
}

/// Routes one job through the cache and, if this worker owns the
/// computation, runs the adaptive trial loop and fans the result out to
/// every identical job that joined in flight.
fn process(shared: &Shared, queued: QueuedJob) {
    let key = JobKey::new(shared.graph_fingerprint, &queued.job);
    // Counters are always bumped BEFORE the corresponding handle is
    // fulfilled: once a caller's wait() returns, the metrics already
    // account for that job.
    match shared.cache.claim(key.clone(), &queued.state) {
        Claim::Served(output) => {
            Counters::bump(&shared.counters.cache_hits);
            Counters::bump(&shared.counters.jobs_completed);
            queued.state.fulfill(Ok(output));
        }
        Claim::Joined => {
            // This worker is done with the job: the computation's owner
            // receives the handle from complete() and counts + fulfills it.
        }
        Claim::Compute => {
            Counters::bump(&shared.counters.cache_misses);
            // A panic in the counting code must neither kill the worker nor
            // strand the jobs joined onto this computation.
            let result = catch_unwind(AssertUnwindSafe(|| run_job(shared, &queued.job)))
                .unwrap_or(Err(ServiceError::WorkerLost));
            if let Ok(output) = &result {
                Counters::add(&shared.counters.trials_executed, output.trials_run as u64);
                Counters::add(
                    &shared.counters.trials_saved,
                    output.budget.saturating_sub(output.trials_run) as u64,
                );
            }
            let waiters = shared.cache.complete(key, &result);
            // Joined twins are cache hits only when something was actually
            // served from the cache: on an error nothing is cached and
            // every joiner receives the failure, so counting them as hits
            // would inflate the hit rate while cached_results stays 0.
            if result.is_ok() {
                Counters::add(&shared.counters.cache_hits, waiters.len() as u64);
            }
            Counters::add(&shared.counters.jobs_completed, 1 + waiters.len() as u64);
            queued.state.fulfill(result.clone());
            for waiter in waiters {
                let served = result.clone().map(|mut output| {
                    output.from_cache = true;
                    output
                });
                waiter.fulfill(served);
            }
        }
    }
}

/// The adaptive trial loop of one job: run chunks through the incremental
/// engine API, stop at the precision target or the budget.
fn run_job(shared: &Shared, job: &CountJob) -> Result<JobOutput, ServiceError> {
    let mut stream = shared
        .engine
        .count(&job.query)
        .algorithm(job.algorithm)
        .seed(job.seed)
        .parallel(shared.trial_parallelism)
        .estimate_incremental()?;
    let mut stop = StopReason::BudgetExhausted;
    while stream.trials_run() < job.budget {
        let chunk = shared.chunk_trials.min(job.budget - stream.trials_run());
        stream.run_chunk(chunk);
        if let Some(precision) = &job.precision {
            if stream.relative_half_width(precision.confidence) <= precision.target {
                stop = StopReason::PrecisionMet;
                break;
            }
        }
    }
    let trials_run = stream.trials_run();
    // A zero budget runs zero trials; the stream reports it as the same
    // typed error the batch API uses.
    let estimate = stream.estimate()?;
    Ok(JobOutput {
        estimate,
        trials_run,
        budget: job.budget,
        stop,
        from_cache: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Precision;
    use sgc_graph::GraphBuilder;
    use sgc_query::catalog;

    fn demo_graph() -> Arc<CsrGraph> {
        let mut b = GraphBuilder::new(10);
        b.extend_edges([
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (0, 5),
            (5, 6),
            (6, 1),
            (2, 7),
            (7, 8),
            (8, 3),
            (4, 9),
            (9, 0),
            (5, 2),
            (6, 3),
        ]);
        Arc::new(b.build())
    }

    fn small_service(workers: usize) -> Service {
        Service::with_config(
            demo_graph(),
            ServiceConfig {
                workers,
                queue_capacity: 16,
                chunk_trials: 4,
                trial_parallelism: false,
            },
        )
    }

    #[test]
    fn a_job_matches_the_batch_engine_api() {
        let service = small_service(2);
        let output = service
            .run(CountJob::new(catalog::triangle()).seed(11).budget(12))
            .unwrap();
        assert_eq!(output.trials_run, 12);
        assert_eq!(output.stop, StopReason::BudgetExhausted);
        assert!(!output.from_cache);
        let batch = service
            .engine()
            .count(&catalog::triangle())
            .trials(12)
            .seed(11)
            .estimate()
            .unwrap();
        assert_eq!(output.estimate.per_trial, batch.per_trial);
        assert_eq!(output.estimate.estimated_matches, batch.estimated_matches);
    }

    #[test]
    fn identical_resubmission_is_a_cache_hit_with_identical_bits() {
        let service = small_service(1);
        let job = CountJob::new(catalog::triangle()).seed(3).budget(8);
        let first = service.run(job.clone()).unwrap();
        let second = service.run(job).unwrap();
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(first.estimate.per_trial, second.estimate.per_trial);
        assert_eq!(
            first.estimate.estimated_matches.to_bits(),
            second.estimate.estimated_matches.to_bits()
        );
        let metrics = service.metrics();
        assert_eq!(metrics.cache_misses, 1);
        assert_eq!(metrics.cache_hits, 1);
        assert_eq!(metrics.cached_results, 1);
        assert_eq!(metrics.jobs_completed, 2);
    }

    #[test]
    fn zero_worker_service_exposes_admission_control_deterministically() {
        let mut service = Service::with_config(
            demo_graph(),
            ServiceConfig {
                workers: 0,
                queue_capacity: 2,
                chunk_trials: 4,
                trial_parallelism: false,
            },
        );
        let a = service.submit(CountJob::new(catalog::triangle())).unwrap();
        let _b = service.submit(CountJob::new(catalog::cycle(4))).unwrap();
        let err = service
            .submit(CountJob::new(catalog::triangle()).seed(99))
            .unwrap_err();
        assert_eq!(err, ServiceError::QueueFull { capacity: 2 });
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_submitted, 2);
        assert_eq!(metrics.jobs_rejected, 1);
        assert_eq!(metrics.queue_depth, 2);
        // Nobody drains a zero-worker queue: shutdown fails the stragglers.
        service.shutdown();
        assert!(matches!(a.wait(), Err(ServiceError::ShuttingDown)));
        let err = service.submit(CountJob::new(catalog::triangle()));
        assert_eq!(err.unwrap_err(), ServiceError::ShuttingDown);
    }

    #[test]
    fn counting_errors_reach_the_handle_as_typed_errors() {
        let service = small_service(1);
        // Treewidth > 2: rejected by the planner inside the worker.
        let mut k4 = sgc_query::QueryGraph::new(4);
        for a in 0..4u8 {
            for b in (a + 1)..4 {
                k4.add_edge(a, b).unwrap();
            }
        }
        let err = service.run(CountJob::new(k4)).unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Count(sgc_core::SgcError::Query(_))
        ));
        // Zero budget: zero trials.
        let err = service
            .run(CountJob::new(catalog::triangle()).budget(0))
            .unwrap_err();
        assert_eq!(err, ServiceError::Count(sgc_core::SgcError::ZeroTrials));
        // Invalid precision is rejected at submission.
        let err = service
            .submit(CountJob::new(catalog::triangle()).precision(Precision::within(0.0)))
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidPrecision { .. }));
        // Errors are not cached: no key holds a completed entry.
        assert_eq!(service.metrics().cached_results, 0);
    }

    #[test]
    fn failing_jobs_never_count_as_cache_hits() {
        let service = small_service(1);
        let mut k4 = sgc_query::QueryGraph::new(4);
        for a in 0..4u8 {
            for b in (a + 1)..4 {
                k4.add_edge(a, b).unwrap();
            }
        }
        let job = CountJob::new(k4);
        assert!(service.run(job.clone()).is_err());
        assert!(service.run(job).is_err());
        let metrics = service.metrics();
        // Errors are not cached, so the second identical job recomputed:
        // two misses, zero hits, nothing stored.
        assert_eq!(metrics.cache_misses, 2);
        assert_eq!(metrics.cache_hits, 0);
        assert_eq!(metrics.cached_results, 0);
        assert_eq!(metrics.jobs_completed, 2);
    }

    #[test]
    fn all_zero_counts_never_early_stop_as_a_precise_zero() {
        // A path graph has no triangles: every trial counts zero. A
        // precision-targeted job must not mistake that run of zeros for a
        // met target — it spends its whole budget and reports a zero
        // estimate with BudgetExhausted.
        let mut b = GraphBuilder::new(8);
        b.extend_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let service = Service::with_config(
            Arc::new(b.build()),
            ServiceConfig {
                workers: 1,
                queue_capacity: 4,
                chunk_trials: 4,
                trial_parallelism: false,
            },
        );
        let output = service
            .run(
                CountJob::new(catalog::triangle())
                    .seed(5)
                    .budget(20)
                    .precision(Precision::within(0.5)),
            )
            .unwrap();
        assert_eq!(output.stop, StopReason::BudgetExhausted);
        assert_eq!(output.trials_run, 20);
        assert_eq!(output.estimate.estimated_matches, 0.0);
        assert_eq!(service.metrics().trials_saved, 0);
    }

    #[test]
    fn precision_target_stops_before_the_budget() {
        let service = small_service(1);
        // A very loose target on a triangle-rich graph: a handful of chunks
        // suffices, far below the 400-trial budget.
        let output = service
            .run(
                CountJob::new(catalog::triangle())
                    .seed(1000)
                    .budget(400)
                    .precision(Precision::within(0.5)),
            )
            .unwrap();
        assert_eq!(output.stop, StopReason::PrecisionMet);
        assert!(
            output.trials_run < output.budget,
            "expected early stop, ran {}/{}",
            output.trials_run,
            output.budget
        );
        // The precision the scheduler stopped on is reproducible from the
        // returned estimate.
        assert!(output.estimate.relative_half_width(0.95) <= 0.5);
        let metrics = service.metrics();
        assert_eq!(
            metrics.trials_saved,
            (output.budget - output.trials_run) as u64
        );
    }
}
