//! λ-balancedness of degree sequences (Section 9.2, Claim 10.1).
//!
//! A degree sequence is λ-balanced when for all integers `a, b ≥ 1`
//! `Σ d_u^{a+b} ≤ λ · (Σ d_u^a)(Σ d_u^b)` — intuitively, the sequence is not
//! too concentrated on its high-degree nodes. Claim 10.1 shows that truncated
//! power-law sequences with exponent `α ∈ (1, 2)` are λ-balanced with
//! `λ = O(n^{α/2 − 1})`, which is the precondition of the Theorem 9.1 bounds.

use crate::bounds::moment;

/// The smallest λ for which the sequence satisfies the balancedness
/// inequality over all exponent pairs `1 ≤ a, b ≤ max_exponent`.
pub fn balancedness(degrees: &[f64], max_exponent: u32) -> f64 {
    assert!(!degrees.is_empty());
    assert!(max_exponent >= 1);
    let mut lambda: f64 = 0.0;
    for a in 1..=max_exponent {
        for b in a..=max_exponent {
            let num = moment(degrees, (a + b) as f64);
            let den = moment(degrees, a as f64) * moment(degrees, b as f64);
            lambda = lambda.max(num / den);
        }
    }
    lambda
}

/// Checks the sequence is `n^{-delta}`-balanced for the given `delta > 0`
/// (the precondition of Lemma 9.5).
pub fn is_n_delta_balanced(degrees: &[f64], delta: f64, max_exponent: u32) -> bool {
    let n = degrees.len() as f64;
    balancedness(degrees, max_exponent) <= n.powf(-delta)
}

/// The asymptotic λ predicted by Claim 10.1 for a truncated power law with
/// exponent `alpha` on `n` nodes: `n^{α/2 − 1}` (constant factors dropped).
pub fn claim_10_1_lambda(n: usize, alpha: f64) -> f64 {
    (n as f64).powf(alpha / 2.0 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_gen::power_law::power_law_degrees;

    #[test]
    fn regular_sequences_are_maximally_balanced() {
        // For the all-ones sequence, Σd^{a+b} = n and (Σd^a)(Σd^b) = n², so
        // λ = 1/n.
        let d = vec![1.0; 500];
        let lambda = balancedness(&d, 3);
        assert!((lambda - 1.0 / 500.0).abs() < 1e-12);
        assert!(is_n_delta_balanced(&d, 0.5, 3));
    }

    #[test]
    fn a_single_dominant_node_is_unbalanced() {
        // One huge degree among ones: Σd^{2} ≈ D², (Σd)² ≈ D² too, so λ ≈ 1 —
        // far from n^{-delta}.
        let mut d = vec![1.0; 100];
        d[0] = 1.0e6;
        assert!(balancedness(&d, 2) > 0.5);
        assert!(!is_n_delta_balanced(&d, 0.1, 2));
    }

    #[test]
    fn power_law_sequences_match_claim_10_1() {
        for &alpha in &[1.3f64, 1.5, 1.7] {
            let n = 1 << 14;
            let d = power_law_degrees(n, alpha);
            let measured = balancedness(&d, 3);
            let predicted = claim_10_1_lambda(n, alpha);
            // Within a constant factor of the predicted asymptotic.
            assert!(
                measured < predicted * 8.0,
                "alpha={alpha}: measured λ {measured} far above predicted Θ({predicted})"
            );
            // And genuinely balanced: λ = n^{-delta} for some positive delta.
            assert!(
                is_n_delta_balanced(&d, 0.05, 3),
                "alpha={alpha}: sequence should be n^-0.05 balanced, λ={measured}"
            );
        }
    }

    #[test]
    fn lambda_ordering_follows_claim_10_1() {
        // Claim 10.1: λ = Θ(n^{α/2 − 1}), so a *smaller* exponent α (heavier
        // tail but mass spread over ~n^{(1−α)/2} top-degree nodes) yields a
        // smaller λ. Check the measured ordering matches the prediction.
        let n = 1 << 14;
        let lambda_12 = balancedness(&power_law_degrees(n, 1.2), 2);
        let lambda_19 = balancedness(&power_law_degrees(n, 1.9), 2);
        assert!(
            lambda_12 < lambda_19,
            "Claim 10.1 predicts λ(α=1.2) < λ(α=1.9): got {lambda_12} vs {lambda_19}"
        );
        assert!(claim_10_1_lambda(n, 1.2) < claim_10_1_lambda(n, 1.9));
    }
}
