//! Closed-form moment bounds of Theorem 9.1.
//!
//! With `2m = Σ d_u`:
//!
//! * Lemma 9.5 (lower bound):
//!   `E[Y(q)] ≥ (1 − o(1)) · (1/q) · (2m)^{3−q} · (Σ d_u²)^{q−2}`,
//! * Lemma 9.6 (upper bound):
//!   `E[X(q)] ≤ C · (2m)^{2−q} · (Σ d_u^{2−1/(q−1)})^{q−1}`.
//!
//! These are evaluated on a concrete (expected) degree sequence so the
//! experiment binaries can compare them against the measured `X(q)` / `Y(q)`
//! counts on sampled Chung-Lu graphs.

/// Sum of `d_u^s` over the degree sequence.
pub fn moment(degrees: &[f64], s: f64) -> f64 {
    degrees.iter().map(|&d| d.powf(s)).sum()
}

/// Twice the number of edges, `2m = Σ d_u`.
pub fn two_m(degrees: &[f64]) -> f64 {
    degrees.iter().sum()
}

/// The Lemma 9.5 lower bound on `E[Y(q)]` (without the `1 − o(1)` factor).
pub fn y_lower_bound(degrees: &[f64], q: usize) -> f64 {
    assert!(q >= 3, "the bounds are stated for q >= 3");
    let m2 = two_m(degrees);
    let d2 = moment(degrees, 2.0);
    (1.0 / q as f64) * m2.powi(3 - q as i32) * d2.powi(q as i32 - 2)
}

/// The Lemma 9.6 upper bound on `E[X(q)]` with `C = 1` (the constant is
/// absorbed when comparing growth rates).
pub fn x_upper_bound(degrees: &[f64], q: usize) -> f64 {
    assert!(q >= 3, "the bounds are stated for q >= 3");
    let m2 = two_m(degrees);
    let exponent = 2.0 - 1.0 / (q as f64 - 1.0);
    let dm = moment(degrees, exponent);
    m2.powi(2 - q as i32) * dm.powi(q as i32 - 1)
}

/// The ratio `x_upper_bound / y_lower_bound`; Lemma 9.7 shows it is `O(1)`
/// for balanced sequences and Lemma 9.8 / Corollary 9.9 show it is `o(1)`
/// (polynomially small) for truncated power-law sequences.
pub fn bound_ratio(degrees: &[f64], q: usize) -> f64 {
    x_upper_bound(degrees, q) / y_lower_bound(degrees, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_gen::power_law::power_law_degrees;

    #[test]
    fn moments_and_two_m() {
        let d = vec![1.0, 2.0, 3.0];
        assert!((two_m(&d) - 6.0).abs() < 1e-12);
        assert!((moment(&d, 2.0) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_on_a_regular_sequence() {
        // Regular degree d on n nodes: Y(q) bound = (1/q) (nd)^{3-q} (nd²)^{q-2}
        // = (1/q) n d^{q-1}; X(q) bound = (nd)^{2-q} (n d^{2-1/(q-1)})^{q-1}
        // = n d^{q-2+... } — for a regular sequence the two are within a
        // factor q of each other (Lemma 9.7 with lambda = 1/n … ≤ 1).
        let d = vec![4.0; 1000];
        for q in 3..6 {
            let ratio = bound_ratio(&d, q);
            assert!(
                ratio <= q as f64 + 1e-9,
                "regular-sequence ratio {ratio} should be at most q = {q}"
            );
            assert!(ratio > 0.0);
        }
    }

    #[test]
    fn power_law_sequences_give_polynomially_smaller_x_bound() {
        // Corollary 9.9: the X bound should shrink relative to the Y bound as
        // n grows, for alpha in (1, 2).
        let alpha = 1.5;
        let small = power_law_degrees(1 << 10, alpha);
        let large = power_law_degrees(1 << 16, alpha);
        for q in [3usize, 4] {
            let r_small = bound_ratio(&small, q);
            let r_large = bound_ratio(&large, q);
            assert!(
                r_large < r_small,
                "q={q}: ratio should decrease with n (got {r_small} -> {r_large})"
            );
        }
    }

    #[test]
    fn y_bound_grows_with_q_on_skewed_sequences() {
        // Remark 9.2: both bounds are monotone in q when Σd² ≥ Σd.
        let d = power_law_degrees(4096, 1.4);
        assert!(y_lower_bound(&d, 4) > y_lower_bound(&d, 3));
        assert!(x_upper_bound(&d, 4) > x_upper_bound(&d, 3));
    }

    #[test]
    #[should_panic]
    fn bounds_require_q_at_least_three() {
        let _ = y_lower_bound(&[1.0, 2.0], 2);
    }
}
