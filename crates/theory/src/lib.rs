//! # sgc-theory — Section 9/10 analysis machinery
//!
//! The paper complements its experiments with an analysis of cycle queries on
//! Chung-Lu random graphs (Section 9): the simplified PS procedure enumerates
//! paths whose *first node has the highest id* (count `Y(q)`, Equation 2),
//! while the simplified DB procedure enumerates *high-starting* paths whose
//! first node is highest in the degree ordering (count `X(q)`, Equation 3).
//! Theorem 9.1 lower-bounds `E[Y(q)]` and upper-bounds `E[X(q)]` in terms of
//! the degree-sequence moments, and shows `X(q)` is polynomially smaller on
//! truncated power-law sequences.
//!
//! This crate provides:
//!
//! * [`paths`] — exact counters for `X(q)` and `Y(q)` on a concrete graph
//!   (used to validate the bounds empirically),
//! * [`bounds`] — the closed-form bounds of Lemmas 9.5, 9.6 and 9.8 evaluated
//!   on a degree sequence,
//! * [`balanced`] — the λ-balancedness measure of Section 9.2 and the
//!   power-law ⇒ balanced check of Claim 10.1.

pub mod balanced;
pub mod bounds;
pub mod paths;

pub use balanced::balancedness;
pub use bounds::{x_upper_bound, y_lower_bound};
pub use paths::{count_high_starting_paths, count_id_ordered_paths};
