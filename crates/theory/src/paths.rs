//! Exact counters for the ordered-path quantities X(q) and Y(q).
//!
//! For an integer `q ≥ 2`:
//!
//! * `Y(q)` (Equation 2) counts simple paths `(u_1, ..., u_q)` in which the
//!   first node has the largest *id* among the path's nodes — the work
//!   performed by the simplified PS procedure with id-based symmetry
//!   breaking,
//! * `X(q)` (Equation 3) counts simple paths in which the first node is the
//!   highest in the *degree ordering* — the work performed by the simplified
//!   DB procedure (high-starting paths).
//!
//! Both are counted exactly by a DFS from every start vertex, pruning
//! extensions that would violate the ordering constraint; the counters are
//! parallelised over start vertices with rayon. The paper's paths are
//! directed sequences, so each undirected path contributes up to two counts.

use rayon::prelude::*;
use sgc_graph::{CsrGraph, DegreeOrder, VertexId};

/// Counts `Y(q)`: simple paths of `q` nodes whose first node has the largest
/// id among the path's nodes.
pub fn count_id_ordered_paths(graph: &CsrGraph, q: usize) -> u64 {
    assert!(q >= 2, "paths need at least two nodes");
    count_constrained_paths(graph, q, |start, other| start > other)
}

/// Counts `X(q)`: high-starting simple paths of `q` nodes — the first node is
/// strictly higher than every other node in the degree ordering.
pub fn count_high_starting_paths(graph: &CsrGraph, order: &DegreeOrder, q: usize) -> u64 {
    assert!(q >= 2, "paths need at least two nodes");
    count_constrained_paths(graph, q, |start, other| order.higher(start, other))
}

fn count_constrained_paths(
    graph: &CsrGraph,
    q: usize,
    start_dominates: impl Fn(VertexId, VertexId) -> bool + Sync,
) -> u64 {
    graph
        .vertices()
        .collect::<Vec<_>>()
        .par_iter()
        .map(|&start| {
            let mut on_path = vec![false; graph.num_vertices()];
            on_path[start as usize] = true;
            let count = extend(graph, &start_dominates, start, start, q - 1, &mut on_path);
            on_path[start as usize] = false;
            count
        })
        .sum()
}

fn extend(
    graph: &CsrGraph,
    start_dominates: &(impl Fn(VertexId, VertexId) -> bool + Sync),
    start: VertexId,
    current: VertexId,
    remaining: usize,
    on_path: &mut Vec<bool>,
) -> u64 {
    if remaining == 0 {
        return 1;
    }
    let mut total = 0;
    for &next in graph.neighbors(current) {
        if on_path[next as usize] || !start_dominates(start, next) {
            continue;
        }
        on_path[next as usize] = true;
        total += extend(graph, start_dominates, start, next, remaining - 1, on_path);
        on_path[next as usize] = false;
    }
    total
}

/// Counts all simple paths of `q` nodes (no ordering constraint), as directed
/// sequences. Used in tests as an upper bound for both X and Y.
pub fn count_all_paths(graph: &CsrGraph, q: usize) -> u64 {
    assert!(q >= 2);
    count_constrained_paths(graph, q, |_, _| true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgc_graph::GraphBuilder;

    fn path_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for i in 1..n {
            b.add_edge((i - 1) as u32, i as u32);
        }
        b.build()
    }

    fn star_graph(leaves: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(leaves + 1);
        for v in 1..=leaves {
            b.add_edge(0, v as u32);
        }
        b.build()
    }

    #[test]
    fn y_counts_id_dominated_paths_on_a_path_graph() {
        // P4 (0-1-2-3): directed 2-node paths = 6; those starting at the
        // higher id endpoint = 3.
        let g = path_graph(4);
        assert_eq!(count_all_paths(&g, 2), 6);
        assert_eq!(count_id_ordered_paths(&g, 2), 3);
    }

    #[test]
    fn x_equals_y_when_degree_order_matches_id_order() {
        // On a path graph the degree order is (1,1,2,2,...) with id
        // tie-breaks; compare against an explicitly id-keyed order.
        let g = path_graph(6);
        let id_order = DegreeOrder::from_keys(&[0; 6]);
        assert_eq!(
            count_high_starting_paths(&g, &id_order, 3),
            count_id_ordered_paths(&g, 3)
        );
    }

    #[test]
    fn star_high_starting_paths_start_at_the_center() {
        // In a star, every 3-node path is leaf-center-leaf; the center has
        // the highest degree, so no path starts at its highest-degree node
        // except those starting at the center — but center-leaf-? cannot
        // continue, so X(3) counts only center-started 2-edge paths: none.
        let g = star_graph(5);
        let order = DegreeOrder::new(&g);
        assert_eq!(count_high_starting_paths(&g, &order, 3), 0);
        // Y(3): paths leaf-center-leaf where the first leaf has the largest
        // id on the path. The center id (0) never dominates; for a pair of
        // leaves the higher one starts: 5 choose 2 = 10 paths.
        assert_eq!(count_id_ordered_paths(&g, 3), 10);
    }

    #[test]
    fn ordering_constraints_never_increase_counts() {
        let g = sgc_gen::erdos_renyi::gnp(30, 0.2, 3);
        let order = DegreeOrder::new(&g);
        for q in 2..5 {
            let all = count_all_paths(&g, q);
            let x = count_high_starting_paths(&g, &order, q);
            let y = count_id_ordered_paths(&g, q);
            assert!(x <= all);
            assert!(y <= all);
            // Each undirected path has exactly one id-maximal endpoint... but
            // the maximal node may be interior, so Y < all strictly when any
            // path has an interior maximum; at minimum the constraint removes
            // the reversed duplicates.
            assert!(y * 2 <= all + y);
        }
    }

    #[test]
    fn skewed_graphs_have_fewer_high_starting_paths() {
        // On a skewed (star-heavy) graph, X(q) should be much smaller than
        // Y(q) — the empirical counterpart of Corollary 9.9.
        let degrees = sgc_gen::power_law::power_law_degrees(400, 1.5);
        let g = sgc_gen::chung_lu::chung_lu(&degrees, 5);
        let order = DegreeOrder::new(&g);
        let x = count_high_starting_paths(&g, &order, 3);
        let y = count_id_ordered_paths(&g, 3);
        assert!(
            x < y,
            "expected X(3)={x} to be smaller than Y(3)={y} on a power-law graph"
        );
    }
}
