//! Count biological motifs in a synthetic protein-interaction network.
//!
//! The paper's motivating application is motif counting in biological
//! networks (Section 1). This example generates a Chung-Lu network with the
//! degree profile of a protein-interaction graph, counts the `dros`, `ecoli1`
//! and `ecoli2` motifs from the Figure 8 suite with both the PS baseline and
//! the DB algorithm, and reports the improvement factor — the per-pair
//! quantity behind Figure 10.
//!
//! Run with:
//! ```text
//! cargo run --release --example biological_motifs
//! ```

use std::time::Instant;
use subgraph_counting::gen::{chung_lu, power_law_degrees};
use subgraph_counting::graph::{Coloring, DegreeStats};
use subgraph_counting::query::catalog;
use subgraph_counting::{Algorithm, Engine};

fn main() {
    // A protein-interaction-like network: a few thousand proteins with a
    // heavy-tailed interaction distribution.
    let degrees: Vec<f64> = power_law_degrees(4000, 1.6)
        .into_iter()
        .map(|d| d * 2.0)
        .collect();
    let graph = chung_lu(&degrees, 7);
    let stats = DegreeStats::compute(&graph);
    println!(
        "synthetic PPI network: {} vertices, {} edges, avg degree {:.1}, max degree {}",
        stats.num_vertices, stats.num_edges, stats.avg_degree, stats.max_degree
    );
    println!();
    println!(
        "{:<8} {:>14} {:>12} {:>12} {:>8}",
        "motif", "colorful", "PS (s)", "DB (s)", "IF"
    );

    // One engine for the whole session: the degree order and rank-sorted
    // adjacency are computed once and shared by all six runs below.
    let engine = Engine::new(&graph);

    for name in ["dros", "ecoli1", "ecoli2"] {
        let query = catalog::query_by_name(name).unwrap();
        let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), 99);

        let started = Instant::now();
        let ps = engine
            .count(&query)
            .algorithm(Algorithm::PathSplitting)
            .coloring(&coloring)
            .run()
            .unwrap();
        let ps_time = started.elapsed().as_secs_f64();

        let started = Instant::now();
        let db = engine
            .count(&query)
            .algorithm(Algorithm::DegreeBased)
            .coloring(&coloring)
            .run()
            .unwrap();
        let db_time = started.elapsed().as_secs_f64();

        assert_eq!(ps.colorful_matches, db.colorful_matches);
        println!(
            "{:<8} {:>14} {:>12.3} {:>12.3} {:>8.2}",
            name,
            db.colorful_matches,
            ps_time,
            db_time,
            ps_time / db_time.max(1e-9)
        );
    }
    println!();
    println!("IF = improvement factor of DB over PS (paper, Figure 10).");
}
