//! Explain any pattern: a thin CLI over `engine.explain_str()`.
//!
//! Pass one or more patterns in the pattern language — edge lists
//! (`"a-b, b-c, c-a"`), generator macros (`cycle(5)`, `star(6)`), or
//! registered names (`glet1`, `brain2`, `satellite`) — and the explorer
//! prints each pattern's explain report (candidate decomposition trees with
//! their Section 6 cost vectors, the heuristic's choice, treewidth verdict,
//! automorphisms, predicted table bounds) and then counts it, demonstrating
//! the text front door end to end. With no arguments it walks the whole
//! built-in registry.
//!
//! Run with:
//! ```text
//! cargo run --release --example plan_explorer -- "a-b, b-c, c-a" "cycle(5)" brain1
//! cargo run --release --example plan_explorer            # the catalog suite
//! ```
//!
//! Malformed patterns exit with a caret diagnostic instead of a panic:
//! ```text
//! error: self loop on node `b`
//!   |
//!   | a-b, b-b
//!   |      ^^^
//! ```

use std::process::ExitCode;
use subgraph_counting::{Engine, Registry, SgcError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let patterns: Vec<String> = if args.is_empty() {
        println!("no patterns given; exploring the built-in registry\n");
        Registry::builtin()
            .names()
            .iter()
            .map(|n| n.to_string())
            .collect()
    } else {
        args
    };

    // A small Erdős–Rényi demo graph makes the predicted table bounds and
    // the final counts concrete.
    let graph = subgraph_counting::gen::erdos_renyi::gnp(48, 0.25, 5);
    let engine = Engine::new(&graph);

    for pattern in &patterns {
        let report = match engine.explain_str(pattern) {
            Ok(report) => report,
            Err(SgcError::Pattern(parse_error)) => {
                // The spanned caret diagnostic, straight from the error.
                eprintln!("{parse_error}");
                return ExitCode::FAILURE;
            }
            Err(other) => {
                eprintln!("error: `{pattern}` cannot be planned: {other}");
                return ExitCode::FAILURE;
            }
        };
        print!("{report}");

        // The same front door counts it: text in, estimate out.
        let estimate = engine
            .count_str(pattern)
            .expect("explained patterns always parse")
            .trials(8)
            .seed(7)
            .estimate()
            .expect("explained patterns always count");
        println!(
            "counted on G(48, 0.25): ~{:.1} matches (~{:.1} subgraphs) over {} trials\n",
            estimate.estimated_matches,
            estimate.estimated_subgraphs,
            estimate.per_trial.len()
        );
    }
    println!(
        "engine plan cache holds {} quer{} (explain does not populate it; counting does)",
        engine.cached_plans(),
        if engine.cached_plans() == 1 {
            "y"
        } else {
            "ies"
        }
    );
    ExitCode::SUCCESS
}
