//! Explore the decomposition trees of the Figure 8 query suite.
//!
//! For every query in the catalog this example enumerates all decomposition
//! trees, prints the plan-cost vector of each (longest cycle, boundary nodes,
//! annotations — the Section 6 heuristic factors), and highlights the plan
//! the heuristic selects.
//!
//! Run with:
//! ```text
//! cargo run --release --example plan_explorer
//! ```

use subgraph_counting::query::{catalog, enumerate_plans, heuristic_plan, PlanCost};

fn main() {
    for spec in catalog::FIGURE8_QUERIES {
        let query = (spec.build)();
        let plans = enumerate_plans(&query).expect("catalog queries are treewidth-2");
        let best = heuristic_plan(&query).unwrap();
        println!(
            "{:<8} ({} nodes, {} edges) — {} plan(s); {}",
            spec.name,
            query.num_nodes(),
            query.num_edges(),
            plans.len(),
            spec.description
        );
        for (i, plan) in plans.iter().enumerate() {
            let cost = PlanCost::of(plan);
            let chosen = if plan.signature() == best.signature() {
                "  <-- heuristic choice"
            } else {
                ""
            };
            println!(
                "    plan {:>2}: blocks={:<2} longest cycle={:<2} boundary nodes={:<2} annotations={:<2}{}",
                i,
                plan.blocks.len(),
                cost.longest_cycle,
                cost.boundary_nodes,
                cost.annotations,
                chosen
            );
        }
        println!();
    }

    // The Satellite worked example from Figure 2 of the paper.
    let satellite = catalog::satellite();
    let tree = heuristic_plan(&satellite).unwrap();
    println!("satellite (Figure 2 worked example): {} blocks", tree.blocks.len());
    for block in &tree.blocks {
        println!(
            "    block {}: {:?} boundary {:?} children {:?}",
            block.id,
            block.kind,
            block.boundary,
            block.children()
        );
    }
}
