//! Explore the decomposition trees of the Figure 8 query suite.
//!
//! For every query in the catalog this example enumerates all decomposition
//! trees, prints the plan-cost vector of each (longest cycle, boundary nodes,
//! annotations — the Section 6 heuristic factors), and highlights the plan
//! the heuristic selects.
//!
//! Run with:
//! ```text
//! cargo run --release --example plan_explorer
//! ```

use subgraph_counting::gen::erdos_renyi::gnp;
use subgraph_counting::query::{catalog, enumerate_plans, heuristic_plan, PlanCost};
use subgraph_counting::{Coloring, Engine};

fn main() {
    for spec in catalog::FIGURE8_QUERIES {
        let query = (spec.build)();
        let plans = enumerate_plans(&query).expect("catalog queries are treewidth-2");
        let best = heuristic_plan(&query).unwrap();
        println!(
            "{:<8} ({} nodes, {} edges) — {} plan(s); {}",
            spec.name,
            query.num_nodes(),
            query.num_edges(),
            plans.len(),
            spec.description
        );
        for (i, plan) in plans.iter().enumerate() {
            let cost = PlanCost::of(plan);
            let chosen = if plan.signature() == best.signature() {
                "  <-- heuristic choice"
            } else {
                ""
            };
            println!(
                "    plan {:>2}: blocks={:<2} longest cycle={:<2} boundary nodes={:<2} annotations={:<2}{}",
                i,
                plan.blocks.len(),
                cost.longest_cycle,
                cost.boundary_nodes,
                cost.annotations,
                chosen
            );
        }
        println!();
    }

    // The Satellite worked example from Figure 2 of the paper.
    let satellite = catalog::satellite();
    let tree = heuristic_plan(&satellite).unwrap();
    println!(
        "satellite (Figure 2 worked example): {} blocks",
        tree.blocks.len()
    );
    for block in &tree.blocks {
        println!(
            "    block {}: {:?} boundary {:?} children {:?}",
            block.id,
            block.kind,
            block.boundary,
            block.children()
        );
    }
    println!();

    // Every plan computes the same count — demonstrate through the Engine,
    // overriding its cached heuristic plan with each enumerated alternative.
    let graph = gnp(48, 0.25, 5);
    let engine = Engine::new(&graph);
    let query = catalog::dros();
    let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), 1);
    println!("dros on G(48, 0.25): colorful count under every plan");
    let reference = engine.count(&query).coloring(&coloring).run().unwrap();
    println!(
        "    heuristic: colorful={:<8} total ops={}",
        reference.colorful_matches, reference.metrics.total_ops
    );
    for (i, plan) in enumerate_plans(&query).unwrap().iter().enumerate() {
        let res = engine
            .count(&query)
            .plan(plan)
            .coloring(&coloring)
            .run()
            .unwrap();
        println!(
            "    plan {:>2}: colorful={:<8} total ops={}",
            i, res.colorful_matches, res.metrics.total_ops
        );
    }
    println!(
        "engine plan cache holds {} quer{} (the heuristic plan, computed once)",
        engine.cached_plans(),
        if engine.cached_plans() == 1 {
            "y"
        } else {
            "ies"
        }
    );
}
