//! Quickstart: count a small motif in a small real network.
//!
//! Builds Zachary's karate-club network (bundled, 34 nodes), binds a
//! counting [`Engine`] to it once, and turns repeated random colorings into
//! an estimate of the true number of occurrences of the "house" graphlet.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use subgraph_counting::core::brute::count_matches;
use subgraph_counting::gen::small::karate_club;
use subgraph_counting::query::catalog;
use subgraph_counting::{Algorithm, Engine};

fn main() {
    let graph = karate_club();
    let query = catalog::glet1(); // the 5-node "house" graphlet
    println!(
        "data graph: karate club ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!("query: glet1 (house graphlet, {} nodes)", query.num_nodes());

    // Exact count by brute force — only possible because the graph is tiny.
    let exact = count_matches(&graph, &query);
    println!("exact number of matches (brute force): {exact}");

    // Bind the engine once: the degree order and rank-sorted adjacency are
    // computed here and shared by every trial below.
    let engine = Engine::new(&graph);

    // The same query through the text front door: `count_str` parses the
    // pattern language (edge lists, generators, catalog names) and counts
    // bit-identically to the constructor path.
    let by_text = engine
        .count_str("glet1")
        .expect("glet1 is a registered pattern name")
        .trials(10)
        .seed(2024)
        .estimate()
        .unwrap();
    let by_ctor = engine
        .count(&query)
        .trials(10)
        .seed(2024)
        .estimate()
        .unwrap();
    assert_eq!(by_text.per_trial, by_ctor.per_trial);
    println!("text front door: count_str(\"glet1\") matches the constructor path bit-for-bit");

    // Color-coding estimate with the Degree Based algorithm.
    for trials in [3usize, 10, 50] {
        let estimate = engine
            .count(&query)
            .algorithm(Algorithm::DegreeBased)
            .trials(trials)
            .seed(2024)
            .estimate()
            .expect("house graphlet is a valid treewidth-2 query");
        let rel_err = (estimate.estimated_matches - exact as f64).abs() / exact as f64;
        println!(
            "color coding with {trials:>3} trials: estimate {:>12.1} matches \
             ({:>10.1} subgraphs, aut={}) — relative error {:.1}%, CoV {:.3}",
            estimate.estimated_matches,
            estimate.estimated_subgraphs,
            estimate.automorphisms,
            rel_err * 100.0,
            estimate.coefficient_of_variation
        );
    }
}
