//! A command-line client for a running `sgc_server`.
//!
//! Run with:
//! ```text
//! cargo run --release --example sgc_client -- --addr HOST:PORT count 'cycle(5)' \
//!     [--seed N] [--budget N] [--precision F] [--algorithm db|ps]
//! cargo run --release --example sgc_client -- --addr HOST:PORT explain 'brain1'
//! cargo run --release --example sgc_client -- --addr HOST:PORT stats
//! cargo run --release --example sgc_client -- --addr HOST:PORT metrics
//! cargo run --release --example sgc_client -- --addr HOST:PORT trace
//! cargo run --release --example sgc_client -- --addr HOST:PORT delta \
//!     [--insert U-V,U-V,...] [--delete U-V,U-V,...]
//! cargo run --release --example sgc_client -- --addr HOST:PORT watch 'cycle(5)' \
//!     [--seed N] [--budget N] [--frames N]
//! ```
//!
//! `count` prints one progress line per streamed estimate chunk to stderr
//! and the final result to stdout. `delta` mutates the server's graph and
//! prints the new version id; `watch` subscribes and prints one
//! version-tagged line per emission (the immediate one, then one per
//! delta), exiting after `--frames` emissions. Typed server errors (including spanned
//! pattern parse errors with their caret diagnostic) are printed to stderr
//! and exit nonzero — which is what the CI smoke job asserts.

use std::process::ExitCode;
use subgraph_counting::net::{Client, ClientError, StreamEvent};
use subgraph_counting::{Algorithm, Precision, StopReason};

struct Options {
    addr: String,
    verb: String,
    pattern: Option<String>,
    seed: u64,
    budget: u64,
    precision: Option<f64>,
    algorithm: Algorithm,
    inserts: Vec<(u32, u32)>,
    deletes: Vec<(u32, u32)>,
    frames: usize,
}

/// Parses a comma-separated edge list like `0-40,1-2`.
fn parse_edges(text: &str) -> Result<Vec<(u32, u32)>, String> {
    text.split(',')
        .filter(|pair| !pair.trim().is_empty())
        .map(|pair| {
            let (u, v) = pair
                .trim()
                .split_once('-')
                .ok_or_else(|| format!("expected U-V, got {pair:?}"))?;
            let u = u.trim().parse().map_err(|e| format!("{pair:?}: {e}"))?;
            let v = v.trim().parse().map_err(|e| format!("{pair:?}: {e}"))?;
            Ok((u, v))
        })
        .collect()
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: String::new(),
        verb: String::new(),
        pattern: None,
        seed: 0x5eed,
        budget: 64,
        precision: None,
        algorithm: Algorithm::DegreeBased,
        inserts: Vec::new(),
        deletes: Vec::new(),
        frames: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--budget" => {
                options.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?
            }
            "--precision" => {
                options.precision = Some(
                    value("--precision")?
                        .parse()
                        .map_err(|e| format!("--precision: {e}"))?,
                )
            }
            "--insert" => options
                .inserts
                .extend(parse_edges(&value("--insert")?).map_err(|e| format!("--insert: {e}"))?),
            "--delete" => options
                .deletes
                .extend(parse_edges(&value("--delete")?).map_err(|e| format!("--delete: {e}"))?),
            "--frames" => {
                options.frames = value("--frames")?
                    .parse()
                    .map_err(|e| format!("--frames: {e}"))?
            }
            "--algorithm" => {
                options.algorithm = match value("--algorithm")?.as_str() {
                    "db" => Algorithm::DegreeBased,
                    "ps" => Algorithm::PathSplitting,
                    other => return Err(format!("--algorithm: expected db or ps, got {other}")),
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            positional if options.verb.is_empty() => options.verb = positional.to_string(),
            positional if options.pattern.is_none() => {
                options.pattern = Some(positional.to_string())
            }
            positional => return Err(format!("unexpected argument {positional}")),
        }
    }
    if options.addr.is_empty() {
        return Err("--addr HOST:PORT is required".to_string());
    }
    if options.verb.is_empty() {
        return Err(
            "expected a verb: count, explain, stats, metrics, trace, delta, or watch".to_string(),
        );
    }
    Ok(options)
}

fn run(options: Options) -> Result<(), ClientError> {
    let mut client = Client::connect(&*options.addr)?;
    match options.verb.as_str() {
        "count" => {
            let pattern = options.pattern.as_deref().unwrap_or_default();
            let mut builder = client
                .count(pattern)
                .algorithm(options.algorithm)
                .seed(options.seed)
                .budget(options.budget);
            if let Some(target) = options.precision {
                builder = builder.precision(Precision::within(target));
            }
            let stream = builder.stream()?;
            let mut chunks = 0usize;
            for event in stream {
                match event? {
                    StreamEvent::Chunk(chunk) => {
                        chunks += 1;
                        eprintln!(
                            "chunk {:>3}: {:>5}/{} trials, estimate {:>14.2}, ±{:.2}%",
                            chunks,
                            chunk.trials_run,
                            chunk.budget,
                            chunk.estimated_subgraphs,
                            100.0 * chunk.relative_half_width
                        );
                    }
                    StreamEvent::Final(output) => {
                        let stop = match output.stop {
                            StopReason::BudgetExhausted => "budget exhausted",
                            StopReason::PrecisionMet => "precision met",
                            StopReason::Cancelled => "cancelled",
                        };
                        println!(
                            "pattern      {pattern}\n\
                             subgraphs    {:.2}\n\
                             matches      {:.2}\n\
                             trials       {}/{}\n\
                             stop         {stop}\n\
                             from_cache   {}",
                            output.estimate.estimated_subgraphs,
                            output.estimate.estimated_matches,
                            output.trials_run,
                            output.budget,
                            output.from_cache,
                        );
                    }
                }
            }
        }
        "watch" => {
            let pattern = options.pattern.as_deref().unwrap_or_default();
            let mut builder = client
                .count(pattern)
                .algorithm(options.algorithm)
                .seed(options.seed)
                .budget(options.budget);
            if let Some(target) = options.precision {
                builder = builder.precision(Precision::within(target));
            }
            let mut stream = builder.watch()?;
            let mut seen = 0usize;
            while let Some(frame) = stream.next() {
                let frame = frame?;
                println!(
                    "watch v{:016x}: {:>5}/{} trials, estimate {:>14.2}, ±{:.2}%",
                    frame.version,
                    frame.trials_run,
                    frame.budget,
                    frame.estimated_subgraphs,
                    100.0 * frame.relative_half_width
                );
                seen += 1;
                if options.frames > 0 && seen >= options.frames {
                    stream.cancel()?;
                }
            }
        }
        "delta" => {
            if options.inserts.is_empty() && options.deletes.is_empty() {
                eprintln!("error: delta expects --insert and/or --delete edge lists");
                std::process::exit(2);
            }
            let version = client.apply_delta(&options.inserts, &options.deletes)?;
            println!("version {version:016x}");
        }
        "explain" => {
            let pattern = options.pattern.as_deref().unwrap_or_default();
            println!("{}", client.explain(pattern)?);
        }
        "stats" => {
            let stats = client.stats()?;
            println!("--- service metrics ---\n{}", stats.service);
            println!("--- server stats ---\n{}", stats.server);
            if !stats.exposition.is_empty() {
                println!("--- metrics exposition ---\n{}", stats.exposition);
            }
        }
        "metrics" => {
            println!("{}", client.metrics()?);
        }
        "trace" => {
            println!("{}", client.trace_log()?);
        }
        other => {
            eprintln!(
                "error: unknown verb {other} \
                 (expected count, explain, stats, metrics, trace, delta, or watch)"
            );
            std::process::exit(2);
        }
    }
    client.bye()
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // `Display` on a remote parse error renders the caret
            // diagnostic the server forwarded from the pattern parser.
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
