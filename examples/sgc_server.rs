//! A standalone counting server: bind a graph, serve it over TCP.
//!
//! Run with:
//! ```text
//! cargo run --release --example sgc_server -- [--addr HOST:PORT] \
//!     [--graph NAME] [--scale F] [--seed N] [--workers N]
//! ```
//!
//! `--addr` defaults to `127.0.0.1:0` (ephemeral port; the bound address is
//! printed as `listening on ADDR` once the server is ready). `--graph`
//! accepts `karate` (default, Zachary's karate club) or any Table 1 analog
//! from the generator catalog (`enron`, `astroph`, …), sized by `--scale`.
//!
//! The process serves until stdin reaches EOF or a line reading `stop`
//! arrives — which is how the CI smoke job drives a clean shutdown — then
//! drains in-flight jobs and prints the end-of-run metrics in the stable
//! `name value` text form shared with the `stats` wire verb.

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;
use subgraph_counting::gen::catalog::spec_by_name;
use subgraph_counting::gen::small::karate_club;
use subgraph_counting::graph::CsrGraph;
use subgraph_counting::net::{Server, ServerConfig};

struct Options {
    addr: String,
    graph: String,
    scale: f64,
    seed: u64,
    workers: Option<usize>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:0".to_string(),
        graph: "karate".to_string(),
        scale: 1.0 / 64.0,
        seed: 1,
        workers: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => options.addr = value("--addr")?,
            "--graph" => options.graph = value("--graph")?,
            "--scale" => {
                options.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--workers" => {
                options.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(options)
}

fn build_graph(options: &Options) -> Result<CsrGraph, String> {
    if options.graph == "karate" {
        return Ok(karate_club());
    }
    match spec_by_name(&options.graph) {
        Some(spec) => Ok(spec.generate(options.scale, options.seed)),
        None => Err(format!(
            "unknown graph {:?} (try `karate` or a Table 1 name like `enron`)",
            options.graph
        )),
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let graph = match build_graph(&options) {
        Ok(graph) => graph,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "graph: {} ({} vertices, {} edges)",
        options.graph,
        graph.num_vertices(),
        graph.num_edges()
    );
    let mut config = ServerConfig::default();
    if let Some(workers) = options.workers {
        config.service.workers = workers;
    }
    let mut server = match Server::bind(&options.addr, Arc::new(graph), config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to bind {}: {e}", options.addr);
            return ExitCode::FAILURE;
        }
    };
    // The readiness line scripts wait for; everything else goes to stderr.
    println!("listening on {}", server.local_addr());

    // Serve until EOF or an explicit `stop` line on stdin.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(line) if line.trim() == "stop" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    eprintln!("shutting down");
    let service_metrics = server.service().metrics();
    let server_stats = server.stats();
    server.shutdown();
    eprintln!("--- service metrics ---\n{service_metrics}");
    eprintln!("--- server stats ---\n{server_stats}");
    ExitCode::SUCCESS
}
