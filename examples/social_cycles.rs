//! Cycle counting on a skewed social network, with load-balance metrics.
//!
//! Generates an R-MAT social network (the paper's weak-scaling generator with
//! Graph 500 parameters), counts 5-cycles and the fused-cycle `brain1` query,
//! and prints the per-rank load statistics that Figure 11 reports: the DB
//! algorithm should show both a lower total load and a lower max/avg
//! imbalance than the PS baseline.
//!
//! Run with:
//! ```text
//! cargo run --release --example social_cycles
//! ```

use subgraph_counting::gen::rmat::{rmat, RmatParams};
use subgraph_counting::graph::{Coloring, DegreeStats};
use subgraph_counting::query::catalog;
use subgraph_counting::{Algorithm, Engine};

fn main() {
    let graph = rmat(11, RmatParams::paper(), 3); // 2048 vertices
    let stats = DegreeStats::compute(&graph);
    println!(
        "R-MAT social network: {} vertices, {} edges, skew {:.1}",
        stats.num_vertices,
        stats.num_edges,
        stats.skew()
    );
    println!();

    let ranks = 64;
    let engine = Engine::new(&graph);
    for (name, query) in [
        ("glet2 (5-cycle)", catalog::glet2()),
        ("brain1", catalog::brain1()),
    ] {
        println!("query {name}:");
        let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), 17);
        let mut results = Vec::new();
        for algorithm in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            let res = engine
                .count(&query)
                .algorithm(algorithm)
                .ranks(ranks)
                .coloring(&coloring)
                .run()
                .unwrap();
            println!(
                "  {:<3} colorful={:<12} total ops={:<12} max load={:<12} avg load={:<12.0} imbalance={:.2}",
                algorithm.short_name(),
                res.colorful_matches,
                res.metrics.total_ops,
                res.metrics.max_load(),
                res.metrics.avg_load(),
                res.metrics.load.imbalance()
            );
            results.push(res);
        }
        assert_eq!(
            results[0].colorful_matches, results[1].colorful_matches,
            "PS and DB must agree"
        );
        let ops_if =
            results[0].metrics.total_ops as f64 / results[1].metrics.total_ops.max(1) as f64;
        let max_if =
            results[0].metrics.max_load() as f64 / results[1].metrics.max_load().max(1) as f64;
        println!(
            "  DB improvement: {:.2}x total ops, {:.2}x max load",
            ops_if, max_if
        );
        println!();
    }
}
