//! # subgraph-counting
//!
//! Facade crate re-exporting the full public API of the workspace: a
//! reproduction of *"Subgraph Counting: Color Coding Beyond Trees"*
//! (Chakaravarthy et al., IPDPS 2016). See the README for a tour and
//! `DESIGN.md` for the system inventory.

pub use sgc_core as core;
pub use sgc_engine as engine;
pub use sgc_gen as gen;
pub use sgc_graph as graph;
pub use sgc_query as query;
pub use sgc_theory as theory;

pub use sgc_core::prelude::*;
