//! # subgraph-counting
//!
//! Facade crate re-exporting the full public API of the workspace: a
//! reproduction of *"Subgraph Counting: Color Coding Beyond Trees"*
//! (Chakaravarthy et al., IPDPS 2016). See the `README.md` for a tour and
//! `DESIGN.md` for the system inventory.
//!
//! The front door is the [`Engine`]: bind it to a data graph once (paying
//! the preprocessing once), then count or estimate any number of queries
//! against it. Queries arrive either as programmatic [`QueryGraph`]s or as
//! textual patterns (`"a-b, b-c, c-a"`, `cycle(5)`, catalog names — see
//! [`query::parse`] for the grammar), and
//! [`Engine::explain`] reports the chosen decomposition plan before
//! anything runs.
//!
//! ```
//! use subgraph_counting::prelude::*;
//! use subgraph_counting::query::catalog;
//!
//! let mut b = GraphBuilder::new(6);
//! b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
//! let graph = b.build();
//!
//! let engine = Engine::new(&graph);
//! let estimate = engine
//!     .count(&catalog::triangle())
//!     .trials(64)
//!     .seed(7)
//!     .estimate()
//!     .expect("triangle is a valid treewidth-2 query");
//! assert!(estimate.estimated_subgraphs > 0.0);
//!
//! // The same query as a text pattern: bit-identical, same plan cache slot.
//! let by_text = engine
//!     .count_str("a-b, b-c, c-a")
//!     .expect("well-formed pattern")
//!     .trials(64)
//!     .seed(7)
//!     .estimate()
//!     .unwrap();
//! assert_eq!(by_text.per_trial, estimate.per_trial);
//!
//! // And the explain report for it, before paying for a run.
//! let report = engine.explain_str("brain1").unwrap();
//! assert_eq!(report.candidates.len(), 2); // the two Section 6 plans
//! ```
//!
//! The pre-0.2 free functions (`count_colorful`, `estimate_count`, …) are
//! still re-exported as deprecated shims that bind a throwaway engine per
//! call; migrate to [`Engine`] to stop paying the preprocessing per call.

pub use sgc_core as core;
/// Versioned graph snapshots and delta-aware incremental recount
/// (`sgc-dyn`; the crate ident avoids the `dyn` keyword).
pub mod dynamic {
    pub use sgc_dyn::*;
}
pub use sgc_engine as engine;
pub use sgc_gen as gen;
pub use sgc_graph as graph;
pub use sgc_net as net;
pub use sgc_obs as obs;
pub use sgc_query as query;
pub use sgc_service as service;
pub use sgc_theory as theory;

pub use sgc_core::prelude;
pub use sgc_core::prelude::*;

// The service front door, re-exported at the top level: binding a
// `Service` is the recommended way to share one graph across many
// concurrent callers.
pub use sgc_service::{
    BatchJob, CancelToken, ChunkUpdate, CountJob, EdgeDelta, JobHandle, JobOutput, Precision,
    Service, ServiceConfig, ServiceError, ServiceMetrics, StopReason, VersionId, WatchFn,
    WatchHandle,
};

// The network front door: serve the bound graph over TCP with streaming
// anytime results, and talk to such a server from Rust.
pub use sgc_net::{Client, Server, ServerConfig, StreamEvent, WatchStream};

// The pattern front door: the text language, its typed spanned errors, the
// name registry behind it, and the explain report. (Also available through
// the prelude; re-exported here so they are discoverable at the top level.)
pub use sgc_core::{BlockReport, PlanCandidate, PlanReport, TreewidthVerdict};
pub use sgc_query::{Pattern, PatternErrorKind, PatternParseError, Registry, RegistryError};
