//! Integration tests for batched multi-query execution.
//!
//! The batch contract under test, end to end: `engine.count_batch` (and
//! `Service::submit_batch` above it) executes many queries per trial over a
//! shared coloring pass, and every member's result is **bit-identical** to
//! its solo run — for the full builtin registry, for text-pattern requests,
//! for sharded execution, and through the service's result cache.

use std::sync::Arc;
use subgraph_counting::core::{Algorithm, Engine};
use subgraph_counting::gen::{chung_lu, power_law_degrees};
use subgraph_counting::graph::CsrGraph;
use subgraph_counting::query::{QueryGraph, Registry};
use subgraph_counting::{BatchJob, CountJob, Service, ServiceConfig};

fn bench_graph() -> CsrGraph {
    let degrees: Vec<f64> = power_law_degrees(180, 1.7)
        .iter()
        .map(|d| d * 2.0)
        .collect();
    chung_lu(&degrees, 99)
}

fn registry_queries() -> Vec<(String, QueryGraph)> {
    Registry::builtin()
        .entries()
        .map(|e| (e.name().to_string(), e.query().clone()))
        .collect()
}

/// The acceptance contract: `count_batch` over the full builtin registry is
/// bit-identical to solo runs, for both algorithms.
#[test]
fn count_batch_over_the_full_registry_is_bit_identical_to_solo() {
    let graph = bench_graph();
    let engine = Engine::new(&graph);
    let queries = registry_queries();
    for algorithm in [Algorithm::DegreeBased, Algorithm::PathSplitting] {
        let requests: Vec<_> = queries
            .iter()
            .map(|(_, q)| engine.count(q).algorithm(algorithm).trials(3).seed(17))
            .collect();
        let batch = engine.count_batch(&requests).unwrap();
        assert_eq!(batch.estimates.len(), queries.len());
        for ((name, query), estimate) in queries.iter().zip(&batch.estimates) {
            let solo = engine
                .count(query)
                .algorithm(algorithm)
                .trials(3)
                .seed(17)
                .estimate()
                .unwrap();
            assert_eq!(estimate.per_trial, solo.per_trial, "{name} {algorithm}");
            assert_eq!(
                estimate.estimated_matches.to_bits(),
                solo.estimated_matches.to_bits(),
                "{name} {algorithm}"
            );
            assert_eq!(
                estimate.estimated_subgraphs.to_bits(),
                solo.estimated_subgraphs.to_bits(),
                "{name} {algorithm}"
            );
        }
        // The registry's structures are all distinct, so nothing dedups —
        // but queries sharing a node count share colorings.
        let m = &batch.metrics;
        assert_eq!(m.queries, queries.len());
        assert_eq!(m.unique_plans, queries.len());
        assert_eq!(m.plans_deduped, 0);
        assert!(m.colorings_drawn < m.cells);
        assert_eq!(m.colorings_drawn + m.colorings_shared, m.cells);
        assert_eq!(m.dp_runs, m.cells, "distinct structures all run their DP");
    }
}

/// A repeat-heavy workload (several clients sweeping the registry with one
/// seed) collapses to one DP run per distinct query per trial.
#[test]
fn duplicate_sweeps_dedup_to_one_dp_run_per_query() {
    let graph = bench_graph();
    let engine = Engine::new(&graph);
    let queries = registry_queries();
    let clients = 3;
    let requests: Vec<_> = (0..clients)
        .flat_map(|_| {
            queries
                .iter()
                .map(|(_, q)| engine.count(q).trials(2).seed(5))
        })
        .collect();
    let batch = engine.count_batch(&requests).unwrap();
    let m = &batch.metrics;
    assert_eq!(m.queries, clients * queries.len());
    assert_eq!(m.unique_plans, queries.len());
    assert_eq!(m.plans_deduped, (clients - 1) * queries.len());
    assert_eq!(m.dp_runs, 2 * queries.len() as u64);
    assert_eq!(m.dp_shared, m.cells - m.dp_runs);
    // Every client's copy is identical (and identical to solo).
    for c in 1..clients {
        for (i, (name, _)) in queries.iter().enumerate() {
            assert_eq!(
                batch.estimates[i].per_trial,
                batch.estimates[c * queries.len() + i].per_trial,
                "{name} client {c}"
            );
        }
    }
}

/// Text-pattern requests batch exactly like constructor-built ones.
#[test]
fn pattern_requests_batch_identically_to_constructors() {
    let graph = bench_graph();
    let engine = Engine::new(&graph);
    let by_text = vec![
        engine.count_str("a-b, b-c, c-a").unwrap().trials(4).seed(3),
        engine.count_str("cycle(4)").unwrap().trials(4).seed(3),
        engine.count_str("glet1").unwrap().trials(4).seed(3),
    ];
    let batch_text = engine.count_batch(&by_text).unwrap();
    let queries = [
        subgraph_counting::query::catalog::triangle(),
        subgraph_counting::query::catalog::cycle(4),
        subgraph_counting::query::catalog::glet1(),
    ];
    let by_ctor: Vec<_> = queries
        .iter()
        .map(|q| engine.count(q).trials(4).seed(3))
        .collect();
    let batch_ctor = engine.count_batch(&by_ctor).unwrap();
    for (a, b) in batch_text.estimates.iter().zip(&batch_ctor.estimates) {
        assert_eq!(a.per_trial, b.per_trial);
        assert_eq!(a.estimated_matches.to_bits(), b.estimated_matches.to_bits());
    }
}

/// Sharded batches (one exchange round per block step) agree with serial
/// batches and solo sharded runs on a generated graph.
#[test]
fn sharded_batches_are_bit_identical_on_generated_graphs() {
    let graph = bench_graph();
    let engine = Engine::new(&graph);
    let queries = registry_queries();
    let serial = engine
        .count_batch(
            &queries
                .iter()
                .map(|(_, q)| engine.count(q).trials(2).seed(23).parallel(false))
                .collect::<Vec<_>>(),
        )
        .unwrap();
    for shards in [2usize, 4] {
        let sharded = engine
            .count_batch(
                &queries
                    .iter()
                    .map(|(_, q)| {
                        engine
                            .count(q)
                            .trials(2)
                            .seed(23)
                            .parallel(false)
                            .sharded(shards)
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        assert!(sharded.metrics.exchange_rounds > 0);
        for ((name, _), (a, b)) in queries
            .iter()
            .zip(serial.estimates.iter().zip(&sharded.estimates))
        {
            assert_eq!(a.per_trial, b.per_trial, "{name} at {shards} shards");
        }
    }
}

/// The service's batch front door produces the same bits as solo
/// submissions and the raw engine, and shares the result cache with them.
#[test]
fn service_batches_match_solo_submissions_and_the_engine() {
    let graph = Arc::new(bench_graph());
    let service = Service::with_config(
        Arc::clone(&graph),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            chunk_trials: 4,
            trial_parallelism: false,
            obs: true,
            ..ServiceConfig::default()
        },
    );
    let queries = registry_queries();
    let batch = BatchJob::from_jobs(
        queries
            .iter()
            .map(|(_, q)| CountJob::new(q.clone()).seed(31).budget(4))
            .collect(),
    );
    let outputs: Vec<_> = service
        .run_batch(batch)
        .unwrap()
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    for ((name, query), output) in queries.iter().zip(&outputs) {
        // Engine-level solo estimate: the determinism baseline.
        let solo = service
            .engine()
            .count(query)
            .trials(4)
            .seed(31)
            .estimate()
            .unwrap();
        assert_eq!(output.estimate.per_trial, solo.per_trial, "{name}");
        assert_eq!(output.trials_run, 4, "{name}");
        // A solo resubmission of the same job hits the batched cache entry.
        let resubmit = service
            .run(CountJob::new(query.clone()).seed(31).budget(4))
            .unwrap();
        assert!(resubmit.from_cache, "{name}");
        assert_eq!(
            resubmit.estimate.estimated_matches.to_bits(),
            output.estimate.estimated_matches.to_bits(),
            "{name}"
        );
    }
    let metrics = service.metrics();
    assert_eq!(metrics.batches_submitted, 1);
    assert_eq!(metrics.cache_misses, queries.len() as u64);
    assert_eq!(metrics.cache_hits, queries.len() as u64);
}
