//! Cross-validation of the PS and DB algorithms against the brute-force
//! oracle on every catalog query over a variety of small data graphs.
//!
//! This is the central correctness suite of the reproduction: for every
//! graph/query/coloring triple small enough to enumerate, the number of
//! colorful matches reported by the Path Splitting baseline, the Degree Based
//! algorithm and the exponential backtracking oracle must be identical, for
//! every decomposition plan of the query. All counts go through the
//! [`Engine`] front door, so this suite also exercises the plan cache and
//! the shared preprocessing.

use subgraph_counting::core::brute::count_colorful_matches;
use subgraph_counting::core::{Algorithm, Engine};
use subgraph_counting::gen::{erdos_renyi::gnp, small};
use subgraph_counting::graph::{Coloring, CsrGraph};
use subgraph_counting::query::{catalog, enumerate_plans, QueryGraph};

const ALGORITHMS: [Algorithm; 2] = [Algorithm::PathSplitting, Algorithm::DegreeBased];

fn check_query_on_engine(
    engine: &Engine<'_>,
    query: &QueryGraph,
    seeds: std::ops::Range<u64>,
    label: &str,
) {
    let graph = engine.graph();
    for seed in seeds {
        let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), seed);
        let expected = count_colorful_matches(graph, query, &coloring);
        for algorithm in ALGORITHMS {
            let got = engine
                .count(query)
                .algorithm(algorithm)
                .ranks(8)
                .coloring(&coloring)
                .run()
                .unwrap()
                .colorful_matches;
            assert_eq!(
                got, expected,
                "{label}: {algorithm} disagrees with brute force (seed {seed})"
            );
        }
    }
}

#[test]
fn figure8_queries_match_brute_force_on_random_graphs() {
    // Data graphs: sparse and denser G(n, p), plus structured graphs.
    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("gnp_14_0.25", gnp(14, 0.25, 1)),
        ("gnp_16_0.35", gnp(16, 0.35, 2)),
        ("petersen", small::petersen()),
        ("grid_4x4", small::grid(4, 4)),
    ];
    for (gname, graph) in &graphs {
        let engine = Engine::new(graph);
        for spec in catalog::FIGURE8_QUERIES {
            let query = (spec.build)();
            check_query_on_engine(&engine, &query, 0..2, &format!("{} on {gname}", spec.name));
        }
        // Ten structurally distinct catalog queries were planned exactly once
        // each through the shared cache.
        assert_eq!(engine.cached_plans(), catalog::FIGURE8_QUERIES.len());
    }
}

#[test]
fn satellite_query_matches_brute_force() {
    // The paper's 11-node worked example, on graphs dense enough to contain it.
    let graphs = [gnp(15, 0.45, 7), gnp(18, 0.35, 8)];
    let query = catalog::satellite();
    for (i, graph) in graphs.iter().enumerate() {
        let engine = Engine::new(graph);
        check_query_on_engine(&engine, &query, 0..2, &format!("satellite on graph {i}"));
    }
}

#[test]
fn karate_club_exact_counts_for_small_queries() {
    // Zachary's karate club is small enough for the oracle on ≤5-node queries
    // and exercises a genuinely skewed real network.
    let graph = small::karate_club();
    let engine = Engine::new(&graph);
    for (name, query) in [
        ("triangle", catalog::triangle()),
        ("c4", catalog::cycle(4)),
        ("c5", catalog::cycle(5)),
        ("glet1", catalog::glet1()),
        ("youtube", catalog::youtube()),
        ("path4", catalog::path(4)),
    ] {
        check_query_on_engine(&engine, &query, 0..2, &format!("{name} on karate"));
    }
}

#[test]
fn every_plan_of_a_query_gives_the_same_count() {
    // Counts must be independent of the decomposition tree chosen.
    let graph = gnp(15, 0.3, 3);
    let engine = Engine::new(&graph);
    for query in [
        catalog::brain1(),
        catalog::ecoli1(),
        catalog::dros(),
        catalog::satellite(),
    ] {
        let plans = enumerate_plans(&query).unwrap();
        assert!(!plans.is_empty());
        let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), 9);
        let reference = count_colorful_matches(&graph, &query, &coloring);
        for (i, plan) in plans.iter().enumerate() {
            for algorithm in ALGORITHMS {
                let got = engine
                    .count(&query)
                    .algorithm(algorithm)
                    .ranks(8)
                    .plan(plan)
                    .coloring(&coloring)
                    .run()
                    .unwrap()
                    .colorful_matches;
                assert_eq!(
                    got, reference,
                    "plan {i} with {algorithm} disagrees with brute force"
                );
            }
        }
    }
}

#[test]
fn tree_queries_agree_with_treelet_dp_and_brute_force() {
    let graph = gnp(20, 0.2, 4);
    let engine = Engine::new(&graph);
    for query in [
        catalog::path(4),
        catalog::path(6),
        catalog::star(4),
        catalog::binary_tree(3),
    ] {
        for seed in 0..2 {
            let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), seed);
            let brute = count_colorful_matches(&graph, &query, &coloring);
            let dp =
                subgraph_counting::core::treelet::count_colorful_treelet(&graph, &coloring, &query);
            assert_eq!(dp, brute);
            for algorithm in ALGORITHMS {
                let got = engine
                    .count(&query)
                    .algorithm(algorithm)
                    .ranks(8)
                    .coloring(&coloring)
                    .run()
                    .unwrap()
                    .colorful_matches;
                assert_eq!(got, brute, "{algorithm}");
            }
        }
    }
}

#[test]
fn counts_are_independent_of_rank_count() {
    let graph = gnp(18, 0.3, 11);
    let engine = Engine::new(&graph);
    let query = catalog::brain2();
    let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), 5);
    let reference = engine
        .count(&query)
        .algorithm(Algorithm::DegreeBased)
        .ranks(1)
        .coloring(&coloring)
        .run()
        .unwrap()
        .colorful_matches;
    for ranks in [2, 7, 64, 512] {
        let got = engine
            .count(&query)
            .algorithm(Algorithm::DegreeBased)
            .ranks(ranks)
            .coloring(&coloring)
            .run()
            .unwrap()
            .colorful_matches;
        assert_eq!(got, reference, "ranks = {ranks}");
    }
}

#[test]
fn empty_and_sparse_graphs_count_zero_for_cyclic_queries() {
    // A forest contains no cycles, so cyclic queries must count zero.
    let graph = small::star(12);
    let engine = Engine::new(&graph);
    for query in [catalog::triangle(), catalog::cycle(5), catalog::brain1()] {
        let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), 0);
        for algorithm in ALGORITHMS {
            let got = engine
                .count(&query)
                .algorithm(algorithm)
                .ranks(8)
                .coloring(&coloring)
                .run()
                .unwrap()
                .colorful_matches;
            assert_eq!(got, 0);
        }
    }
}
