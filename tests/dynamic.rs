//! Dynamic-graph suite: versioned snapshots, delta-aware incremental
//! recount, and live watch subscriptions.
//!
//! The one hard contract under test is **bit-identity**: counting at a
//! version — whether from scratch, replayed from the partial store, or
//! recounted incrementally from a parent version's partials — returns
//! per-trial counts bit-for-bit equal to a from-scratch run of the engine
//! on a *freshly built* graph with the same edge list. It is checked three
//! ways:
//!
//! * differentially under proptest: random delta batches over ER/Chung-Lu
//!   graphs × registry queries × shard counts {1, 4},
//! * against a checked-in golden fixture
//!   (`tests/fixtures/dynamic_chain.tsv`): a fixed chain of deltas whose
//!   per-version exact counts were computed once and committed,
//! * end-to-end through `Service::{apply_delta, count_at, watch}` and the
//!   protocol-v3 `delta` / `watch` verbs over a loopback TCP connection.

use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use subgraph_counting::core::{Algorithm, Engine};
use subgraph_counting::dynamic::{estimate_at, PartialStore, VersionedGraph};
use subgraph_counting::gen::{chung_lu, gnm, power_law_degrees};
use subgraph_counting::graph::{CsrGraph, EdgeDelta, GraphBuilder};
use subgraph_counting::net::{Client, Server, ServerConfig};
use subgraph_counting::query::{catalog, QueryGraph, Registry};
use subgraph_counting::service::{CountJob, Service, ServiceConfig, ServiceError, WatchFn};
use subgraph_counting::VersionId;

/// A small ER or Chung-Lu graph — the two families the incremental-recount
/// satellite names.
fn generated_graph(family: u8, n: usize, seed: u64) -> CsrGraph {
    match family % 2 {
        0 => gnm(n, 2 * n, seed),
        _ => {
            let degrees: Vec<f64> = power_law_degrees(n, 1.8).iter().map(|d| d * 1.5).collect();
            chung_lu(&degrees, seed)
        }
    }
}

/// Every query of the builtin registry.
fn registry_queries() -> Vec<(String, QueryGraph)> {
    Registry::builtin()
        .entries()
        .map(|e| (e.name().to_string(), e.query().clone()))
        .collect()
}

/// A fresh `CsrGraph` from a graph's edge list — the "fresh build" side of
/// the bit-identity contract (no shared CSR segments, no snapshot
/// machinery).
fn rebuild(graph: &CsrGraph) -> CsrGraph {
    let mut b = GraphBuilder::new(graph.num_vertices());
    b.extend_edges(graph.edges());
    b.build()
}

/// A deterministic valid delta batch for `graph`: up to `max_deletes`
/// existing edges removed and up to `max_inserts` absent edges added, with
/// no overlap in either direction. May be empty on tiny dense graphs.
fn random_delta(graph: &CsrGraph, seed: u64, max_inserts: usize, max_deletes: usize) -> EdgeDelta {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = graph.num_vertices() as u64;
    let edges: Vec<(u32, u32)> = graph.edges().collect();
    let mut deletes: Vec<(u32, u32)> = Vec::new();
    if !edges.is_empty() {
        for _ in 0..max_deletes {
            let edge = edges[(next() % edges.len() as u64) as usize];
            if !deletes.contains(&edge) {
                deletes.push(edge);
            }
        }
    }
    let mut inserts: Vec<(u32, u32)> = Vec::new();
    if n >= 2 {
        // Bounded rejection sampling; a dense graph may yield fewer (or no)
        // inserts, which is fine.
        for _ in 0..8 * max_inserts {
            if inserts.len() == max_inserts {
                break;
            }
            let u = (next() % n) as u32;
            let v = (next() % n) as u32;
            let (u, v) = (u.min(v), u.max(v));
            if u == v || graph.has_edge(u, v) || inserts.contains(&(u, v)) {
                continue;
            }
            inserts.push((u, v));
        }
    }
    EdgeDelta::new(inserts, deletes).expect("generated delta is valid by construction")
}

/// The first `count` vertex pairs absent from `graph`, in lexicographic
/// order — guaranteed-valid inserts for the fixed-scenario tests below.
fn absent_edges(graph: &CsrGraph, count: usize) -> Vec<(u32, u32)> {
    let n = graph.num_vertices() as u32;
    let mut found = Vec::new();
    'outer: for u in 0..n {
        for v in (u + 1)..n {
            if !graph.has_edge(u, v) {
                found.push((u, v));
                if found.len() == count {
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(found.len(), count, "graph too dense for the test scenario");
    found
}

// ---------------------------------------------------------------------------
// Differential property: incremental ≡ store replay ≡ scratch ≡ fresh build.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random delta batches over ER/Chung-Lu graphs × registry queries ×
    /// shard counts {1, 4}: the incremental recount (parent partials in
    /// store), a pure-scratch run (empty store), and the engine on a fresh
    /// build of the new edge list all agree bit-for-bit, trial by trial.
    #[test]
    fn incremental_recount_is_bit_identical_differentially(
        family in 0u8..2,
        graph_seed in 0u64..1_000_000,
        query_idx in 0usize..64,
        shard_sel in 0u8..2,
    ) {
        let shards = if shard_sel == 0 { 1usize } else { 4 };
        let n = 12 + (graph_seed as usize % 8);
        let graph = generated_graph(family, n, graph_seed);
        let queries = registry_queries();
        let (_, query) = &queries[query_idx % queries.len()];
        let seed = 0x5eed ^ graph_seed;
        let trials = 3;

        let mut versions = VersionedGraph::new(&graph);
        let store = PartialStore::default();
        let root = versions.root();
        // Populate the store at the root so the post-delta run has parent
        // partials to recount from.
        estimate_at(&versions, &store, root, query, Algorithm::DegreeBased, seed, trials, shards)
            .unwrap();

        let delta = random_delta(&graph, graph_seed ^ 0x9e37_79b9, 3, 2);
        if delta.is_empty() {
            // Degenerate (e.g. an edgeless Chung-Lu draw): nothing to test.
            return Ok(());
        }
        let v1 = versions.apply_to_head(&delta).unwrap();

        let (incremental, outcome) =
            estimate_at(&versions, &store, v1, query, Algorithm::DegreeBased, seed, trials, shards)
                .unwrap();
        prop_assert_eq!(outcome.trials_incremental, trials);

        // Scratch on an empty store (no replay possible).
        let (scratch, scratch_outcome) = estimate_at(
            &versions, &PartialStore::default(), v1, query,
            Algorithm::DegreeBased, seed, trials, shards,
        ).unwrap();
        prop_assert_eq!(scratch_outcome.trials_scratch, trials);
        prop_assert_eq!(&incremental.per_trial, &scratch.per_trial);

        // The engine on a freshly built graph with the same edge list.
        let data = versions.data_at(v1).unwrap();
        let reference = Engine::new(&rebuild(&data.graph))
            .count(query)
            .seed(seed)
            .trials(trials)
            .estimate()
            .unwrap();
        prop_assert_eq!(&incremental.per_trial, &reference.per_trial);
        prop_assert_eq!(incremental.estimated_subgraphs, reference.estimated_subgraphs);
    }
}

// ---------------------------------------------------------------------------
// Golden fixture: a fixed delta chain against committed exact counts.
// ---------------------------------------------------------------------------

const CHAIN_FIXTURE: &str = include_str!("fixtures/dynamic_chain.tsv");

/// The fixed scenario behind `fixtures/dynamic_chain.tsv`: `gnm(24, 48, 7)`
/// mutated by three delta batches, counted with two registry queries after
/// every batch.
fn chain_scenario() -> (CsrGraph, Vec<EdgeDelta>, Vec<(String, QueryGraph)>) {
    let graph = gnm(24, 48, 7);
    let mut deltas = Vec::new();
    let mut current = rebuild(&graph);
    for round in 0..3u64 {
        let delta = random_delta(&current, 0xc4a1_0000 + round, 4, 3);
        assert!(!delta.is_empty(), "chain fixture deltas must be non-empty");
        let mut versions = VersionedGraph::new(&current);
        let v = versions.apply_to_head(&delta).unwrap();
        current = rebuild(&versions.data_at(v).unwrap().graph);
        deltas.push(delta);
    }
    let queries = vec![
        ("triangle".to_string(), catalog::triangle()),
        ("path4".to_string(), catalog::path(4)),
    ];
    (graph, deltas, queries)
}

/// Runs the chain scenario and renders one fixture row per
/// `(version index, query)`: `step query edge_count per_trial...`.
fn chain_rows() -> Vec<String> {
    let (graph, deltas, queries) = chain_scenario();
    let mut versions = VersionedGraph::new(&graph);
    let store = PartialStore::default();
    let mut version = versions.root();
    let mut rows = Vec::new();
    for (step, delta) in deltas.iter().enumerate() {
        version = versions.apply_delta(version, delta).unwrap();
        let data = versions.data_at(version).unwrap();
        for (name, query) in &queries {
            let (estimate, _) = estimate_at(
                &versions,
                &store,
                version,
                query,
                Algorithm::DegreeBased,
                11,
                4,
                4,
            )
            .unwrap();
            let counts: Vec<String> = estimate.per_trial.iter().map(|c| c.to_string()).collect();
            rows.push(format!(
                "{}\t{}\t{}\t{}",
                step + 1,
                name,
                data.graph.num_edges(),
                counts.join(",")
            ));
        }
    }
    rows
}

/// The chain's incremental counts match the committed fixture row for row —
/// and the final version is bit-identical to the engine on a fresh build of
/// the final edge list.
#[test]
fn delta_chain_matches_golden_fixture_and_fresh_build() {
    let expected: Vec<&str> = CHAIN_FIXTURE
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let actual = chain_rows();
    assert_eq!(
        actual.len(),
        expected.len(),
        "fixture row count diverged; regenerate with \
         `cargo test --test dynamic regenerate_chain_fixture -- --ignored --nocapture`"
    );
    for (row, want) in actual.iter().zip(&expected) {
        assert_eq!(row, want, "chain fixture row diverged");
    }

    // Fresh-build cross-check at the chain tip.
    let (graph, deltas, queries) = chain_scenario();
    let mut versions = VersionedGraph::new(&graph);
    let mut version = versions.root();
    for delta in &deltas {
        version = versions.apply_delta(version, delta).unwrap();
    }
    let fresh = rebuild(&versions.data_at(version).unwrap().graph);
    let store = PartialStore::default();
    for (_, query) in &queries {
        let (estimate, _) = estimate_at(
            &versions,
            &store,
            version,
            query,
            Algorithm::DegreeBased,
            11,
            4,
            4,
        )
        .unwrap();
        let reference = Engine::new(&fresh)
            .count(query)
            .seed(11)
            .trials(4)
            .estimate()
            .unwrap();
        assert_eq!(estimate.per_trial, reference.per_trial);
    }
}

/// Prints a fresh fixture table. Run with
/// `cargo test --test dynamic regenerate_chain_fixture -- --ignored --nocapture`
/// and replace `tests/fixtures/dynamic_chain.tsv` after an *intentional*
/// change to the generators, the delta digest, or the DP.
#[test]
#[ignore = "regeneration helper, not a test"]
fn regenerate_chain_fixture() {
    println!("# step\tquery\tedges\tper_trial (seed 11, 4 trials, 4 shards)");
    for row in chain_rows() {
        println!("{row}");
    }
}

// ---------------------------------------------------------------------------
// Service: apply_delta / count_at / watch / eviction accounting.
// ---------------------------------------------------------------------------

fn service_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_capacity: 64,
        chunk_trials: 4,
        trial_parallelism: false,
        obs: true,
        ..ServiceConfig::default()
    }
}

#[test]
fn service_count_at_is_bit_identical_to_fresh_build() {
    let graph = Arc::new(gnm(20, 40, 3));
    let service = Service::with_config(Arc::clone(&graph), service_config());
    let root = service.root_version();
    assert_eq!(service.head_version(), root);

    let inserts = absent_edges(&graph, 2);
    let delta = EdgeDelta::new(inserts.clone(), vec![]).unwrap();
    let v1 = service.apply_delta(&delta).unwrap();
    assert_ne!(v1, root);
    assert_eq!(service.head_version(), v1);
    assert!(service.has_version(root) && service.has_version(v1));

    let job = || CountJob::new(catalog::triangle()).seed(21).budget(8);
    let at_v1 = service.count_at(v1, job()).unwrap();

    // Fresh build of the new edge list, counted by the engine.
    let mut b = GraphBuilder::new(graph.num_vertices());
    b.extend_edges(graph.edges());
    b.extend_edges(inserts);
    let reference = Engine::new(&b.build())
        .count(&catalog::triangle())
        .seed(21)
        .trials(8)
        .estimate()
        .unwrap();
    assert_eq!(at_v1.estimate.per_trial, reference.per_trial);

    // Counting at the root still sees the pre-delta graph.
    let at_root = service.count_at(root, job()).unwrap();
    let pre = Engine::new(&graph)
        .count(&catalog::triangle())
        .seed(21)
        .trials(8)
        .estimate()
        .unwrap();
    assert_eq!(at_root.estimate.per_trial, pre.per_trial);

    // Unknown versions are a typed error, not a panic.
    let err = service
        .count_at(VersionId::from_u64(0xdead_beef), job())
        .unwrap_err();
    assert!(matches!(err, ServiceError::UnknownVersion { .. }));
    service.shutdown();
}

#[test]
fn service_rejects_invalid_deltas() {
    let graph = Arc::new(gnm(12, 24, 5));
    let service = Service::with_config(Arc::clone(&graph), service_config());
    let existing = graph.edges().next().unwrap();
    let delta = EdgeDelta::new(vec![existing], vec![]).unwrap();
    let err = service.apply_delta(&delta).unwrap_err();
    assert!(matches!(err, ServiceError::Delta { .. }));
    assert_eq!(service.head_version(), service.root_version());

    // Re-applying a just-applied insert is also rejected — its XOR digest
    // would land back on the root id, and the head must not walk back.
    let fresh = absent_edges(&graph, 1);
    let delta = EdgeDelta::new(fresh, vec![]).unwrap();
    let v1 = service.apply_delta(&delta).unwrap();
    let err = service.apply_delta(&delta).unwrap_err();
    assert!(matches!(err, ServiceError::Delta { .. }));
    assert_eq!(service.head_version(), v1);
    service.shutdown();
}

#[test]
fn result_cache_evictions_are_bounded_and_counted() {
    let graph = Arc::new(gnm(16, 32, 9));
    let service = Service::with_config(
        graph,
        ServiceConfig {
            cache_capacity: 2,
            ..service_config()
        },
    );
    for seed in 0..6u64 {
        service
            .run(CountJob::new(catalog::triangle()).seed(seed).budget(4))
            .unwrap();
    }
    let metrics = service.metrics();
    assert!(
        metrics.cache_evictions >= 4,
        "6 distinct jobs through a 2-entry cache must evict at least 4, saw {}",
        metrics.cache_evictions
    );
    assert!(metrics.cached_results <= 2);
    assert!(service.exposition().contains("service_cache_evictions"));
    service.shutdown();
}

#[test]
fn watch_reemits_a_version_tagged_estimate_per_delta() {
    let graph = Arc::new(gnm(20, 40, 13));
    let inserts = absent_edges(&graph, 2);
    let service = Service::with_config(graph, service_config());
    type Emissions = Arc<Mutex<Vec<(u64, Vec<u64>)>>>;
    let emissions: Emissions = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&emissions);
    let callback: WatchFn = Arc::new(move |version, update| {
        sink.lock()
            .unwrap()
            .push((version.as_u64(), update.estimate.per_trial.clone()));
    });

    let job = CountJob::new(catalog::path(4)).seed(3).budget(6);
    let handle = service.watch(job.clone(), callback).unwrap();
    assert_eq!(service.watch_count(), 1);
    // The initial estimate (at the head at subscription time) is emitted
    // synchronously by `watch` itself.
    assert_eq!(emissions.lock().unwrap().len(), 1);
    assert_eq!(
        emissions.lock().unwrap()[0].0,
        service.head_version().as_u64()
    );

    let delta = EdgeDelta::new(vec![inserts[0]], vec![]).unwrap();
    let v1 = service.apply_delta(&delta).unwrap();
    {
        let seen = emissions.lock().unwrap();
        assert_eq!(seen.len(), 2, "apply_delta must re-emit to live watchers");
        assert_eq!(seen[1].0, v1.as_u64());
        // The re-emitted estimate is the version's exact per-trial counts.
        let direct = service.count_at(v1, job.clone()).unwrap();
        assert_eq!(seen[1].1, direct.estimate.per_trial);
    }

    // After unwatch, further deltas stop re-emitting.
    service.unwatch(handle.id());
    assert_eq!(service.watch_count(), 0);
    let delta2 = EdgeDelta::new(vec![inserts[1]], vec![]).unwrap();
    service.apply_delta(&delta2).unwrap();
    assert_eq!(emissions.lock().unwrap().len(), 2);
    service.shutdown();
}

// ---------------------------------------------------------------------------
// Protocol v3 over loopback TCP: delta and watch verbs.
// ---------------------------------------------------------------------------

#[test]
fn net_watch_streams_version_tagged_chunks_across_deltas() {
    let graph = Arc::new(gnm(20, 40, 17));
    let mut server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&graph),
        ServerConfig {
            service: service_config(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let mut watcher = Client::connect(addr).unwrap();
    let mut mutator = Client::connect(addr).unwrap();

    let mut stream = watcher
        .count("a-b, b-c, c-a")
        .seed(29)
        .budget(8)
        .watch()
        .unwrap();
    let first = stream.next().unwrap().unwrap();
    assert!(first.trials_run > 0);

    // An invalid delta is rejected with a typed error and no new version.
    let existing = graph.edges().next().unwrap();
    let err = mutator.apply_delta(&[existing], &[]).unwrap_err();
    match err {
        subgraph_counting::net::ClientError::Remote(frame) => {
            assert_eq!(frame.kind, subgraph_counting::net::ErrorKind::Delta);
        }
        other => panic!("expected a remote delta error, got {other}"),
    }

    // A valid delta lands a new version; the watcher's next frame carries
    // it. The server re-emits before acknowledging the delta, so reading
    // after `apply_delta` returned cannot hang.
    let inserts = absent_edges(&graph, 2);
    let version = mutator.apply_delta(&inserts, &[existing]).unwrap();
    let second = stream.next().unwrap().unwrap();
    assert_eq!(second.version, version);
    assert_ne!(first.version, second.version);
    assert_eq!(first.id, second.id);

    // Cancel unsubscribes: the stream ends cleanly.
    stream.cancel().unwrap();
    assert!(stream.next().is_none());

    // Stats now travel the eviction counter (protocol v3 field).
    let stats = mutator.stats().unwrap();
    assert_eq!(stats.service.cache_evictions, 0);

    mutator.bye().unwrap();
    watcher.bye().unwrap();
    server.shutdown();
}

#[test]
fn net_count_after_delta_is_unchanged_at_the_base_graph() {
    // Plain `count` (the v2 verbs) keeps answering against the bound graph
    // regardless of deltas — versioned reads are explicit.
    let graph = Arc::new(gnm(16, 32, 23));
    let mut server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&graph),
        ServerConfig {
            service: service_config(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let before = client
        .count("a-b, b-c, c-d")
        .seed(31)
        .budget(6)
        .run()
        .unwrap();
    let inserts = absent_edges(&graph, 1);
    client.apply_delta(&inserts, &[]).unwrap();
    let after = client
        .count("a-b, b-c, c-d")
        .seed(31)
        .budget(6)
        .run()
        .unwrap();
    assert_eq!(before.estimate.per_trial, after.estimate.per_trial);
    assert!(after.from_cache);

    client.bye().unwrap();
    server.shutdown();
}
