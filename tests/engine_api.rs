//! Integration tests of the `Engine` front door through the facade crate:
//! typed error paths (no panics on bad input), the deterministic per-trial
//! RNG contract under parallel trials, and the bind-once amortization
//! guarantee.

use subgraph_counting::core::context::prep_build_count;
use subgraph_counting::gen::erdos_renyi::gnp;
use subgraph_counting::graph::Coloring;
use subgraph_counting::query::{catalog, QueryError, QueryGraph};
use subgraph_counting::{Algorithm, CountConfig, Engine, SgcError};

#[test]
fn mismatched_coloring_size_is_a_typed_error() {
    let graph = gnp(12, 0.3, 1);
    let engine = Engine::new(&graph);
    let short = Coloring::random(5, 3, 0); // covers 5 of 12 vertices
    let err = engine
        .count(&catalog::triangle())
        .coloring(&short)
        .run()
        .unwrap_err();
    assert_eq!(
        err,
        SgcError::ColoringSizeMismatch {
            graph_vertices: 12,
            coloring_vertices: 5
        }
    );
    assert!(err.to_string().contains("12"));
}

#[test]
fn wrong_color_count_is_a_typed_error() {
    let graph = gnp(12, 0.3, 2);
    let engine = Engine::new(&graph);
    let query = catalog::cycle(5);
    let coloring = Coloring::random(graph.num_vertices(), 3, 0); // needs 5
    let err = engine.count(&query).coloring(&coloring).run().unwrap_err();
    assert_eq!(
        err,
        SgcError::WrongColorCount {
            expected: 5,
            actual: 3
        }
    );
}

#[test]
fn explicit_coloring_with_estimate_is_a_typed_error() {
    let graph = gnp(12, 0.3, 10);
    let engine = Engine::new(&graph);
    let coloring = Coloring::random(graph.num_vertices(), 3, 0);
    let err = engine
        .count(&catalog::triangle())
        .coloring(&coloring)
        .trials(5)
        .estimate()
        .unwrap_err();
    assert_eq!(err, SgcError::ColoringWithEstimate);
    assert!(err.to_string().contains("run()"));
}

#[test]
fn zero_trials_is_a_typed_error() {
    let graph = gnp(12, 0.3, 3);
    let engine = Engine::new(&graph);
    let err = engine
        .count(&catalog::triangle())
        .trials(0)
        .estimate()
        .unwrap_err();
    assert_eq!(err, SgcError::ZeroTrials);
}

#[test]
fn zero_ranks_is_a_typed_error_for_run_and_estimate() {
    let graph = gnp(12, 0.3, 4);
    let engine = Engine::new(&graph);
    let query = catalog::triangle();
    assert_eq!(
        engine.count(&query).ranks(0).run().unwrap_err(),
        SgcError::ZeroRanks
    );
    assert_eq!(
        engine
            .count(&query)
            .config(CountConfig::default().with_ranks(0))
            .estimate()
            .unwrap_err(),
        SgcError::ZeroRanks
    );
}

#[test]
fn treewidth_exceeding_queries_are_rejected_not_panicked_on() {
    let graph = gnp(12, 0.4, 5);
    let engine = Engine::new(&graph);
    // K4 has treewidth 3.
    let mut k4 = QueryGraph::new(4);
    for a in 0..4u8 {
        for b in (a + 1)..4 {
            k4.add_edge(a, b).unwrap();
        }
    }
    let err = engine.count(&k4).run().unwrap_err();
    assert_eq!(err, SgcError::Query(QueryError::TreewidthExceeded));
    let err = engine.count(&k4).trials(5).estimate().unwrap_err();
    assert_eq!(err, SgcError::Query(QueryError::TreewidthExceeded));
    // The error chains back to the query layer.
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
#[allow(deprecated)]
fn deprecated_facade_shims_return_errors_instead_of_panicking() {
    use subgraph_counting::{count_colorful, estimate_count};
    let graph = gnp(10, 0.3, 6);
    let query = catalog::triangle();
    let short = Coloring::random(4, 3, 0);
    assert!(matches!(
        count_colorful(&graph, &short, &query, &CountConfig::default()),
        Err(SgcError::ColoringSizeMismatch { .. })
    ));
    let config = subgraph_counting::EstimateConfig {
        trials: 0,
        ..Default::default()
    };
    assert!(matches!(
        estimate_count(&graph, &query, &config),
        Err(SgcError::ZeroTrials)
    ));
}

#[test]
fn trial_seeds_are_deterministic_regardless_of_parallelism() {
    let graph = gnp(30, 0.25, 7);
    let engine = Engine::new(&graph);
    let query = catalog::glet1();

    let serial = engine
        .count(&query)
        .trials(12)
        .seed(99)
        .parallel(false)
        .estimate()
        .unwrap();
    // Pin explicit pool sizes so real threads are exercised even on a
    // single-CPU host (where the default pool would degenerate to serial).
    for threads in [2, 4] {
        let parallel = subgraph_counting::engine::parallel::run_with_threads(threads, || {
            engine
                .count(&query)
                .trials(12)
                .seed(99)
                .parallel(true)
                .estimate()
                .unwrap()
        });
        assert_eq!(
            serial.per_trial, parallel.per_trial,
            "serial and {threads}-thread estimation must be bit-identical"
        );
        assert_eq!(serial.estimated_matches, parallel.estimated_matches);
        assert_eq!(serial.variance, parallel.variance);
    }

    // Trial i uses seed + i: a run whose base seed is shifted by one must
    // reproduce the overlapping trials exactly.
    let shifted = engine
        .count(&query)
        .trials(11)
        .seed(100)
        .estimate()
        .unwrap();
    assert_eq!(serial.per_trial[1..], shifted.per_trial[..]);
}

#[test]
fn engine_builds_the_preprocessing_exactly_once() {
    let graph = gnp(25, 0.25, 8);
    let before = prep_build_count();
    let engine = Engine::new(&graph);
    assert_eq!(
        prep_build_count() - before,
        1,
        "binding builds the prep once"
    );

    // Sequential trials keep every (hypothetical) rebuild on this thread,
    // where the thread-local build counter would see it.
    let after_bind = prep_build_count();
    for query in [catalog::triangle(), catalog::cycle(4), catalog::glet1()] {
        for algorithm in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            engine
                .count(&query)
                .algorithm(algorithm)
                .trials(10)
                .parallel(false)
                .estimate()
                .unwrap();
        }
    }
    assert_eq!(
        prep_build_count() - after_bind,
        0,
        "60 trials across 3 queries must not rebuild the preprocessing"
    );
}

#[test]
fn engine_estimates_converge_like_the_old_free_functions() {
    // End-to-end sanity: the estimate is still an unbiased estimator.
    let graph = gnp(14, 0.35, 9);
    let engine = Engine::new(&graph);
    let query = catalog::triangle();
    let exact = subgraph_counting::core::brute::count_matches(&graph, &query) as f64;
    let est = engine.count(&query).trials(300).seed(1).estimate().unwrap();
    let rel_err = (est.estimated_matches - exact).abs() / exact.max(1.0);
    assert!(
        rel_err < 0.35,
        "estimate {} too far from exact {exact} (rel err {rel_err})",
        est.estimated_matches
    );
}

#[test]
fn one_engine_survives_many_concurrent_counting_threads() {
    // The Mutex-guarded plan cache under real contention: many threads,
    // one shared engine, a mix of queries that are and are not already
    // planned, runs and estimates interleaved. Every thread must see
    // exactly the counts a single-threaded engine produces.
    let graph = gnp(28, 0.25, 4);
    let engine = Engine::new(&graph);
    let queries = [catalog::triangle(), catalog::cycle(4), catalog::glet1()];

    // Single-threaded reference results.
    let expected_runs: Vec<u64> = queries
        .iter()
        .map(|q| engine.count(q).seed(7).run().unwrap().colorful_matches)
        .collect();
    let expected_estimates: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| {
            engine
                .count(q)
                .trials(6)
                .seed(40)
                .estimate()
                .unwrap()
                .per_trial
        })
        .collect();

    std::thread::scope(|scope| {
        for worker in 0..8 {
            let engine = &engine;
            let queries = &queries;
            let expected_runs = &expected_runs;
            let expected_estimates = &expected_estimates;
            scope.spawn(move || {
                for round in 0..4 {
                    // Shift the query order per worker so distinct queries
                    // race each other in the plan cache, not just the same
                    // entry.
                    let qi = (worker + round) % queries.len();
                    let run = engine
                        .count(&queries[qi])
                        .seed(7)
                        .run()
                        .unwrap()
                        .colorful_matches;
                    assert_eq!(run, expected_runs[qi], "worker {worker} round {round}");
                    let est = engine
                        .count(&queries[qi])
                        .trials(6)
                        .seed(40)
                        .estimate()
                        .unwrap();
                    assert_eq!(
                        est.per_trial, expected_estimates[qi],
                        "worker {worker} round {round}"
                    );
                }
            });
        }
    });

    // Racing planners may both plan a query, but the cache must converge to
    // exactly one entry per distinct query.
    assert_eq!(engine.cached_plans(), queries.len());
}

#[test]
fn concurrent_planning_of_the_same_query_caches_one_plan() {
    let graph = gnp(16, 0.3, 5);
    let engine = Engine::new(&graph);
    assert_eq!(engine.cached_plans(), 0);
    let plans: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let engine = &engine;
                scope.spawn(move || engine.plan(&catalog::cycle(5)).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(engine.cached_plans(), 1);
    // Whoever won the insertion race, every thread was handed the single
    // cached plan object (the `or_insert` winner).
    let canonical = engine.plan(&catalog::cycle(5)).unwrap();
    for plan in &plans {
        assert!(std::sync::Arc::ptr_eq(plan, &canonical));
    }
}
