//! Golden-count fixtures: checked-in exact counts that pin the generators
//! and the DP down.
//!
//! `tests/fixtures/golden_counts.tsv` holds rows of
//! `(generator spec, query, coloring seed) → (edge count, colorful count)`
//! computed once and committed. The test regenerates every graph and
//! recounts with both algorithms (and through the sharded runtime), so a
//! regression in *either* a generator (different graph ⇒ different edge
//! count or counts) or the counting DP (same graph, different counts)
//! fails loudly against the committed truth instead of silently shifting
//! every downstream experiment.
//!
//! To regenerate after an *intentional* change, run
//! `cargo test --test golden regenerate_golden_fixtures -- --ignored --nocapture`
//! and replace the fixture file with the printed table.

use subgraph_counting::core::{Algorithm, Engine, KernelKind};
use subgraph_counting::gen::{chung_lu, gnm, power_law_degrees, rmat, RmatParams};
use subgraph_counting::graph::{Coloring, CsrGraph, GraphBuilder};
use subgraph_counting::query::{catalog, QueryGraph};

const FIXTURES: &str = include_str!("fixtures/golden_counts.tsv");

/// The generator specs the fixture table covers, one per family the
/// experiment harness uses.
const GENERATORS: &[&str] = &["gnm:24:48:7", "gnm:30:70:21", "chung_lu:28:11", "rmat:4:3"];

/// The fixture queries: small enough to be cheap, varied enough to cover
/// leaf edges, even/odd cycles and multi-block plans — plus the 11-node
/// satellite worked example.
const QUERIES: &[&str] = &["triangle", "c4", "path4", "glet1", "dros", "satellite"];

const COLORING_SEEDS: &[u64] = &[5, 9];

/// Wide-lane rows: `(generator, query)` pairs whose color count exceeds 64,
/// forcing every signature through the second u64 word of the two-word
/// bitset representation. These run under a *rainbow* coloring (vertex `i`
/// gets color `i mod k`) so the counts are analytic — a C66 query on a
/// rainbow 66-cycle has exactly `2 * 66` colorful matches (rotations times
/// reflections), a P70 query on a rainbow 70-path exactly 2 (the two
/// directions) — instead of the near-certain zero a random coloring with
/// more than 64 colors would produce.
const WIDE_ROWS: &[(&str, &str)] = &[("cycle:66", "c66"), ("path:70", "path70")];

/// Seed column value used for wide rows (the rainbow coloring ignores it).
const RAINBOW_SEED: u64 = 0;

/// Whether a generator spec belongs to the rainbow-colored wide-lane rows.
fn is_wide_spec(spec: &str) -> bool {
    spec.starts_with("cycle:") || spec.starts_with("path:")
}

/// Builds the graph a generator spec describes. Specs are versioned by
/// their exact text: changing a generator's behaviour must come with a
/// fixture regeneration.
fn generate(spec: &str) -> CsrGraph {
    let parts: Vec<&str> = spec.split(':').collect();
    let int = |i: usize| -> u64 { parts[i].parse().expect("numeric generator field") };
    match parts[0] {
        "gnm" => gnm(int(1) as usize, int(2) as usize, int(3)),
        "chung_lu" => {
            let n = int(1) as usize;
            let degrees: Vec<f64> = power_law_degrees(n, 1.8).iter().map(|d| d * 2.0).collect();
            chung_lu(&degrees, int(2))
        }
        "rmat" => {
            let params = RmatParams {
                edge_factor: 4,
                ..RmatParams::paper()
            };
            rmat(int(1) as u32, params, int(2))
        }
        "cycle" => {
            let n = int(1) as usize;
            let mut b = GraphBuilder::new(n);
            for i in 0..n {
                b.add_edge(i as u32, ((i + 1) % n) as u32);
            }
            b.build()
        }
        "path" => {
            let n = int(1) as usize;
            let mut b = GraphBuilder::new(n);
            for i in 0..n - 1 {
                b.add_edge(i as u32, (i + 1) as u32);
            }
            b.build()
        }
        other => panic!("unknown generator family `{other}` in spec `{spec}`"),
    }
}

fn query_by_name(name: &str) -> QueryGraph {
    match name {
        "triangle" => catalog::triangle(),
        "c4" => catalog::cycle(4),
        "path4" => catalog::path(4),
        "c66" => catalog::cycle(66),
        "path70" => catalog::path(70),
        other => catalog::query_by_name(other)
            .unwrap_or_else(|| panic!("unknown fixture query `{other}`")),
    }
}

/// One recomputed fixture row.
fn recount(spec: &str, query_name: &str, coloring_seed: u64) -> (usize, u64) {
    let graph = generate(spec);
    let query = query_by_name(query_name);
    let k = query.num_nodes();
    // Wide-lane rows (k > 64) use the rainbow coloring their analytic
    // counts are stated for; everything else draws the seeded random
    // coloring the fixture was committed with.
    let coloring = if is_wide_spec(spec) {
        Coloring::from_colors(
            (0..graph.num_vertices()).map(|i| (i % k) as u8).collect(),
            k,
        )
    } else {
        Coloring::random(graph.num_vertices(), k, coloring_seed)
    };
    let engine = Engine::new(&graph);
    let db = engine
        .count(&query)
        .algorithm(Algorithm::DegreeBased)
        .coloring(&coloring)
        .run()
        .unwrap()
        .colorful_matches;
    // Both algorithms, both kernels and the sharded runtime must reproduce
    // the committed count — one fixture row cross-checks four execution
    // paths (the unmarked runs use the default columnar kernel).
    let ps = engine
        .count(&query)
        .algorithm(Algorithm::PathSplitting)
        .coloring(&coloring)
        .run()
        .unwrap()
        .colorful_matches;
    assert_eq!(ps, db, "PS and DB disagree on {spec} / {query_name}");
    let scalar = engine
        .count(&query)
        .kernel(KernelKind::Scalar)
        .coloring(&coloring)
        .run()
        .unwrap()
        .colorful_matches;
    assert_eq!(
        scalar, db,
        "scalar and columnar kernels disagree on {spec} / {query_name}"
    );
    let sharded = engine
        .count(&query)
        .coloring(&coloring)
        .sharded(2)
        .run()
        .unwrap()
        .colorful_matches;
    assert_eq!(sharded, db, "sharded diverges on {spec} / {query_name}");
    (graph.num_edges(), db)
}

#[test]
fn committed_golden_counts_reproduce() {
    let mut rows = 0;
    for line in FIXTURES.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 5, "malformed fixture row: {line}");
        let (spec, query, seed, edges, count) = (
            fields[0],
            fields[1],
            fields[2].parse::<u64>().expect("seed"),
            fields[3].parse::<usize>().expect("edge count"),
            fields[4].parse::<u64>().expect("colorful count"),
        );
        let (got_edges, got_count) = recount(spec, query, seed);
        assert_eq!(
            got_edges, edges,
            "generator drift: {spec} produced {got_edges} edges, fixture says {edges}"
        );
        assert_eq!(
            got_count, count,
            "count drift on {spec} / {query} / seed {seed}"
        );
        rows += 1;
    }
    // The table must actually cover the matrix — an accidentally truncated
    // fixture file should fail, not silently pass on fewer rows.
    assert_eq!(
        rows,
        GENERATORS.len() * QUERIES.len() * COLORING_SEEDS.len() + WIDE_ROWS.len(),
        "fixture table does not cover the full generator x query x seed matrix"
    );
}

/// The wide-lane fixture rows are not just committed numbers: their counts
/// are analytic. A rainbow n-cycle contains exactly `2n` colorful matches
/// of the n-cycle query and a rainbow n-path exactly 2 of the n-path query,
/// independent of any generator or DP detail.
#[test]
fn wide_lane_sentinels_are_analytic() {
    assert_eq!(recount("cycle:66", "c66", RAINBOW_SEED), (66, 2 * 66));
    assert_eq!(recount("path:70", "path70", RAINBOW_SEED), (69, 2));
}

/// Prints a fresh fixture table. Run with
/// `cargo test --test golden regenerate_golden_fixtures -- --ignored --nocapture`
/// after an intentional generator or DP change, and commit the output as
/// `tests/fixtures/golden_counts.tsv`.
#[test]
#[ignore = "fixture regeneration helper, not a check"]
fn regenerate_golden_fixtures() {
    println!("# generator\tquery\tcoloring_seed\tedges\tcolorful_count");
    for spec in GENERATORS {
        for query in QUERIES {
            for &seed in COLORING_SEEDS {
                let (edges, count) = recount(spec, query, seed);
                println!("{spec}\t{query}\t{seed}\t{edges}\t{count}");
            }
        }
    }
    for (spec, query) in WIDE_ROWS {
        let (edges, count) = recount(spec, query, RAINBOW_SEED);
        println!("{spec}\t{query}\t{RAINBOW_SEED}\t{edges}\t{count}");
    }
}
