//! Kernel-equivalence test harness: the columnar u64-bitset kernel must be
//! bit-identical to the scalar kernel on every execution path.
//!
//! The differential suite runs random graphs from the real generator
//! families (Erdős–Rényi / Chung-Lu / R-MAT, n ≤ 12) through the full
//! builtin registry with both algorithms and both kernels, and asserts the
//! counts match exactly. A second suite pins columnar sharded execution
//! ({1, 2, 4} shards) to columnar serial execution. Deterministic tests
//! cover the columnar storage primitives at u64-lane granularity and the
//! arena-reuse contract (steady-state trials allocate no new table
//! capacity).

use proptest::prelude::*;
use subgraph_counting::core::{Algorithm, Engine, KernelKind, KernelMetrics};
use subgraph_counting::engine::columnar::{path_key, ColumnarTable, EndpointGroups};
use subgraph_counting::engine::Signature;
use subgraph_counting::gen::{chung_lu, gnm, power_law_degrees, rmat, RmatParams};
use subgraph_counting::graph::{Coloring, CsrGraph};
use subgraph_counting::query::{QueryGraph, Registry};

/// A small graph from one of the real generator families, mirroring
/// `tests/property.rs`: Erdős–Rényi, Chung-Lu over a truncated power-law
/// degree sequence, or R-MAT.
fn generated_graph(family: u8, n: usize, seed: u64) -> CsrGraph {
    debug_assert!(n <= 12);
    match family % 3 {
        0 => gnm(n, 2 * n, seed),
        1 => {
            let degrees: Vec<f64> = power_law_degrees(n, 1.8).iter().map(|d| d * 1.5).collect();
            chung_lu(&degrees, seed)
        }
        _ => {
            let params = RmatParams {
                edge_factor: 3,
                ..RmatParams::paper()
            };
            rmat(3, params, seed)
        }
    }
}

/// Every query of the builtin registry (the ten Figure 8 analogs plus the
/// 11-node satellite worked example).
fn registry_queries() -> Vec<(String, QueryGraph)> {
    Registry::builtin()
        .entries()
        .map(|e| (e.name().to_string(), e.query().clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole differential: on random generated graphs, the scalar
    /// and columnar kernels produce bit-identical counts for every registry
    /// query under both algorithms.
    #[test]
    fn scalar_and_columnar_kernels_are_bit_identical(
        family in 0u8..3,
        n in 6usize..13,
        graph_seed in 0u64..10_000,
        coloring_seed in 0u64..1000,
    ) {
        let graph = generated_graph(family, n, graph_seed);
        let engine = Engine::new(&graph);
        for (name, query) in registry_queries() {
            let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), coloring_seed);
            for alg in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
                let scalar = engine
                    .count(&query)
                    .algorithm(alg)
                    .kernel(KernelKind::Scalar)
                    .coloring(&coloring)
                    .run()
                    .unwrap();
                let columnar = engine
                    .count(&query)
                    .algorithm(alg)
                    .kernel(KernelKind::Columnar)
                    .coloring(&coloring)
                    .run()
                    .unwrap();
                prop_assert_eq!(
                    columnar.colorful_matches,
                    scalar.colorful_matches,
                    "{} with {} on family {}",
                    name,
                    alg,
                    family
                );
                // The scalar kernel never touches an arena.
                prop_assert_eq!(scalar.metrics.kernel, KernelMetrics::default());
            }
        }
    }

    /// Columnar sharded execution at {1, 2, 4} shards is bit-identical to
    /// columnar serial execution for every registry query and algorithm.
    #[test]
    fn columnar_sharded_equals_columnar_serial(
        family in 0u8..3,
        n in 6usize..13,
        graph_seed in 0u64..10_000,
        coloring_seed in 0u64..1000,
        algorithm_selector in 0u8..2,
    ) {
        let graph = generated_graph(family, n, graph_seed);
        let engine = Engine::new(&graph);
        let algorithm = if algorithm_selector == 0 {
            Algorithm::PathSplitting
        } else {
            Algorithm::DegreeBased
        };
        for (name, query) in registry_queries() {
            let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), coloring_seed);
            let serial = engine
                .count(&query)
                .algorithm(algorithm)
                .kernel(KernelKind::Columnar)
                .coloring(&coloring)
                .run()
                .unwrap()
                .colorful_matches;
            for shards in [1usize, 2, 4] {
                let sharded = engine
                    .count(&query)
                    .algorithm(algorithm)
                    .kernel(KernelKind::Columnar)
                    .coloring(&coloring)
                    .sharded(shards)
                    .run()
                    .unwrap()
                    .colorful_matches;
                prop_assert_eq!(sharded, serial, "{} at {} shards", name, shards);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bitset lane primitives: the u64-word behaviours the columnar kernel leans
// on, exercised at table granularity.
// ---------------------------------------------------------------------------

#[test]
fn empty_signature_and_full_word_rows_are_distinct_keys() {
    // The empty set, a full low word and a full high word must hash and
    // compare as three different rows under the same vertex key.
    let mut t = ColumnarTable::new();
    let key = path_key(3, 9);
    let empty = Signature::empty();
    let low_full = Signature::from_words([u64::MAX, 0]);
    let high_full = Signature::from_words([0, u64::MAX]);
    t.add(key, empty, 1);
    t.add(key, low_full, 2);
    t.add(key, high_full, 4);
    assert_eq!(t.len(), 3);
    assert_eq!(t.get(key, empty), 1);
    assert_eq!(t.get(key, low_full), 2);
    assert_eq!(t.get(key, high_full), 4);
    assert_eq!(t.total(), 7);
}

#[test]
fn word_boundary_bits_do_not_alias() {
    // Bit 63 (top of lane 0) and bit 64 (bottom of lane 1) are adjacent
    // colors but live in different u64 words; a lane mixup would alias them.
    let mut t = ColumnarTable::new();
    let key = path_key(0, 1);
    t.add(key, Signature::singleton(63), 10);
    t.add(key, Signature::singleton(64), 20);
    assert_eq!(t.len(), 2);
    assert_eq!(t.get(key, Signature::singleton(63)), 10);
    assert_eq!(t.get(key, Signature::singleton(64)), 20);
    assert_eq!(t.get(key, Signature::pair(63, 64)), 0);
}

#[test]
fn popcount_driven_merge_accumulates_same_lane_rows() {
    // Rows with equal (key, signature-words) merge by count addition — the
    // popcount (signature length) of the merged row never changes, and
    // insertion order is irrelevant to the stored sum.
    let sig = Signature::empty().with(5).with(63).with(64).with(127);
    assert_eq!(sig.len(), 4);
    let mut ab = ColumnarTable::new();
    let key = path_key(2, 7);
    ab.add(key, sig, 3);
    ab.add(key, sig, 4);
    let mut ba = ColumnarTable::new();
    ba.add(key, sig, 4);
    ba.add(key, sig, 3);
    assert_eq!(ab.len(), 1);
    assert_eq!(ab.get(key, sig), 7);
    assert_eq!(ab.get(key, sig), ba.get(key, sig));
    let (_, stored, _) = ab.row(0);
    assert_eq!(stored.len(), 4);
}

#[test]
fn subset_enumeration_at_word_boundary_fills_distinct_rows() {
    // Enumerate the power set of a boundary-straddling signature into a
    // table: all 2^3 subsets must land in distinct rows whose popcounts
    // sum to the binomial expectation (0+1+1+1+2+2+2+3 = 12).
    let s = Signature::empty().with(62).with(63).with(64);
    let mut t = ColumnarTable::new();
    let key = path_key(1, 2);
    for sub in s.subsets() {
        t.add(key, sub, 1 + sub.len() as u64);
    }
    assert_eq!(t.len(), 8);
    let popcount_sum: u32 = t.rows().map(|(_, sig, _)| sig.len()).sum();
    assert_eq!(popcount_sum, 12);
    assert_eq!(t.get(key, s), 4);
    assert_eq!(t.get(key, Signature::empty()), 1);
}

#[test]
fn endpoint_groups_partition_rows_by_packed_key() {
    let mut t = ColumnarTable::new();
    t.add(path_key(1, 2), Signature::singleton(0), 1);
    t.add(path_key(1, 2), Signature::singleton(1), 2);
    t.add(path_key(2, 1), Signature::singleton(2), 3);
    t.add(path_key(1, 3), Signature::singleton(3), 4);
    let mut g = EndpointGroups::new();
    g.build(&t);
    let group = g.rows_for(1, 2);
    assert_eq!(group.len(), 2);
    for &r in group {
        let (key, _, _) = t.row(r as usize);
        assert_eq!((key[0], key[1]), (1, 2));
    }
    assert_eq!(g.rows_for(2, 1).len(), 1);
    assert_eq!(g.rows_for(3, 1).len(), 0);
}

// ---------------------------------------------------------------------------
// Arena reuse: steady-state trials allocate no new table capacity.
// ---------------------------------------------------------------------------

#[test]
fn steady_state_runs_reuse_arenas_without_growth() {
    let graph = gnm(60, 180, 11);
    let engine = Engine::new(&graph);
    let query = subgraph_counting::query::catalog::cycle(5);
    let coloring = Coloring::random(graph.num_vertices(), 5, 42);
    let run = || {
        engine
            .count(&query)
            .coloring(&coloring)
            .run()
            .unwrap()
            .metrics
    };
    let first = run();
    // The very first checkout builds the arena from nothing.
    assert_eq!(first.kernel.arena_reuses, 0);
    assert!(first.kernel.arena_bytes > 0);
    assert!(first.kernel.arena_grown_bytes > 0);
    // Identical follow-up trials take the warmed arena from the pool and
    // grow nothing: the steady path is allocation-free.
    for trial in 0..2 {
        let m = run();
        assert_eq!(m.kernel.arena_reuses, 1, "trial {trial} missed the pool");
        assert_eq!(
            m.kernel.arena_grown_bytes, 0,
            "steady-state trial {trial} grew the arena"
        );
        assert_eq!(m.kernel.arena_bytes, first.kernel.arena_bytes);
    }
}

#[test]
fn sequential_estimate_trials_reuse_arenas() {
    let graph = gnm(40, 100, 7);
    let engine = Engine::new(&graph);
    let query = subgraph_counting::query::catalog::triangle();
    // Warm the pool, then three sequential trials over the same engine:
    // every one of them should check out a pooled arena.
    let coloring = Coloring::random(graph.num_vertices(), 3, 0);
    let _ = engine.count(&query).coloring(&coloring).run().unwrap();
    for seed in 1..=3u64 {
        let c = Coloring::random(graph.num_vertices(), 3, seed);
        let m = engine.count(&query).coloring(&c).run().unwrap().metrics;
        assert_eq!(m.kernel.arena_reuses, 1, "seed {seed} missed the pool");
    }
    // The estimator path reports totals but not per-trial metrics; its
    // bit-identity with the per-coloring path is covered by the engine-API
    // and property suites.
    let est = engine
        .count(&query)
        .trials(3)
        .seed(99)
        .parallel(false)
        .estimate()
        .unwrap();
    assert_eq!(est.per_trial.len(), 3);
}

#[test]
fn scalar_kernel_reports_zero_kernel_metrics() {
    let graph = gnm(30, 80, 5);
    let engine = Engine::new(&graph);
    let query = subgraph_counting::query::catalog::cycle(4);
    let coloring = Coloring::random(graph.num_vertices(), 4, 1);
    let m = engine
        .count(&query)
        .kernel(KernelKind::Scalar)
        .coloring(&coloring)
        .run()
        .unwrap()
        .metrics;
    assert_eq!(m.kernel, KernelMetrics::default());
    assert!(m.total_ops > 0);
}
