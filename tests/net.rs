//! Loopback integration tests of the `sgc-net` TCP layer.
//!
//! Everything runs against a real server on an ephemeral localhost port.
//! The central acceptance criterion is **bit-identity**: the outputs a
//! client decodes off the wire equal — to the bit — what
//! [`Service::run`] produces for the same job parameters, for every
//! pattern in the built-in registry. On top of that: streamed chunk
//! frames arrive before the final (and replay bit-identically through a
//! fresh incremental stream), concurrent clients share the single-flight
//! cache, cancellation stops a stream at a chunk boundary with a partial
//! estimate, admission control surfaces as the one retryable wire error,
//! and malformed frames and patterns produce typed, spanned errors.

use std::sync::Arc;
use subgraph_counting::gen::erdos_renyi::gnp;
use subgraph_counting::graph::CsrGraph;
use subgraph_counting::net::{
    Client, ClientError, ErrorKind, Server, ServerConfig, StreamEvent, WireOutput,
};
use subgraph_counting::query::Registry;
use subgraph_counting::{
    CountJob, Engine, JobOutput, Precision, Service, ServiceConfig, StopReason,
};

fn test_graph() -> Arc<CsrGraph> {
    Arc::new(gnp(60, 0.12, 42))
}

fn server_config(workers: usize, queue_capacity: usize, chunk_trials: usize) -> ServerConfig {
    ServerConfig {
        service: ServiceConfig {
            workers,
            queue_capacity,
            chunk_trials,
            trial_parallelism: false,
            obs: true,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn start_server(workers: usize, queue_capacity: usize, chunk_trials: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        test_graph(),
        server_config(workers, queue_capacity, chunk_trials),
    )
    .expect("ephemeral bind")
}

/// Asserts a wire output equals a service output bit-for-bit, field by
/// field.
fn assert_outputs_bit_identical(wire: &WireOutput, local: &JobOutput, context: &str) {
    assert_eq!(wire.trials_run as usize, local.trials_run, "{context}");
    assert_eq!(wire.budget as usize, local.budget, "{context}");
    assert_eq!(wire.stop, local.stop, "{context}");
    let w = &wire.estimate;
    let l = &local.estimate;
    assert_eq!(w.per_trial, l.per_trial, "{context}");
    assert_eq!(w.automorphisms, l.automorphisms, "{context}");
    for (name, ours, theirs) in [
        ("mean_colorful", w.mean_colorful, l.mean_colorful),
        ("scale", w.scale, l.scale),
        (
            "estimated_matches",
            w.estimated_matches,
            l.estimated_matches,
        ),
        (
            "estimated_subgraphs",
            w.estimated_subgraphs,
            l.estimated_subgraphs,
        ),
        ("variance", w.variance, l.variance),
        (
            "coefficient_of_variation",
            w.coefficient_of_variation,
            l.coefficient_of_variation,
        ),
    ] {
        assert_eq!(
            ours.to_bits(),
            theirs.to_bits(),
            "{context}: {name} differs ({ours} vs {theirs})"
        );
    }
}

/// The tentpole invariant: for every pattern in the built-in registry, the
/// output decoded off the wire is bit-identical to `Service::run` with the
/// same job parameters against the same graph.
#[test]
fn wire_outputs_are_bit_identical_to_service_run_for_every_registry_query() {
    let mut server = start_server(2, 64, 4);
    let reference = Service::with_config(
        test_graph(),
        ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            chunk_trials: 4,
            trial_parallelism: false,
            obs: true,
            ..ServiceConfig::default()
        },
    );
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let names = Registry::builtin().names();
    assert!(!names.is_empty());
    for name in names {
        let over_wire = client
            .count(name)
            .seed(1234)
            .budget(6)
            .run()
            .unwrap_or_else(|e| panic!("wire count of {name} failed: {e}"));
        let local = reference
            .run(
                CountJob::from_pattern_str(name)
                    .expect("registry names parse")
                    .seed(1234)
                    .budget(6),
            )
            .unwrap_or_else(|e| panic!("local count of {name} failed: {e}"));
        assert_outputs_bit_identical(&over_wire, &local, name);
    }
    client.bye().expect("clean goodbye");
    server.shutdown();
}

/// A precision-targeted job streams its anytime estimates: at least two
/// chunk frames arrive before the final, trials increase monotonically,
/// and every chunk replays bit-identically through a fresh incremental
/// stream of exactly that many trials.
#[test]
fn precision_jobs_stream_chunks_before_the_final_and_chunks_replay_bitwise() {
    let graph = test_graph();
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&graph), server_config(1, 16, 4))
        .expect("ephemeral bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // An unreachably tight target: the job runs its whole 12-trial budget
    // in 4-trial chunks, deterministically streaming 3 chunk frames.
    let stream = client
        .count("cycle(3)")
        .seed(77)
        .budget(12)
        .precision(Precision::within(1e-4))
        .stream()
        .expect("send count");
    let mut chunks = Vec::new();
    let mut finals = Vec::new();
    for event in stream {
        match event.expect("stream event") {
            StreamEvent::Chunk(chunk) => {
                assert!(finals.is_empty(), "chunk arrived after the final frame");
                chunks.push(chunk);
            }
            StreamEvent::Final(output) => finals.push(output),
        }
    }
    assert_eq!(chunks.len(), 3, "12-trial budget in 4-trial chunks");
    assert_eq!(finals.len(), 1);
    let final_output = &finals[0];
    assert_eq!(final_output.stop, StopReason::BudgetExhausted);
    assert_eq!(final_output.trials_run, 12);
    assert!(
        chunks.windows(2).all(|w| w[0].trials_run < w[1].trials_run),
        "chunk trial counts must increase monotonically"
    );
    // Each streamed snapshot is anytime-consistent: a fresh incremental
    // stream over the same engine parameters, run to exactly the chunk's
    // trial count, reproduces the estimate bit for bit.
    let engine = Engine::new(&graph);
    let query = subgraph_counting::query::Pattern::parse("cycle(3)")
        .expect("well-formed")
        .into_query();
    for chunk in &chunks {
        let mut replay = engine
            .count(&query)
            .seed(77)
            .estimate_incremental()
            .expect("plannable");
        replay.run_chunk(chunk.trials_run as usize);
        let estimate = replay.estimate().expect("non-empty");
        assert_eq!(
            chunk.estimated_subgraphs.to_bits(),
            estimate.estimated_subgraphs.to_bits(),
            "chunk at {} trials",
            chunk.trials_run
        );
        assert_eq!(
            chunk.relative_half_width.to_bits(),
            estimate.relative_half_width(0.95).to_bits(),
            "chunk at {} trials",
            chunk.trials_run
        );
    }
    client.bye().expect("clean goodbye");
    server.shutdown();
}

/// N clients submitting the identical job concurrently: one computation,
/// N bit-identical answers, N−1 cache hits (in-flight joins or served
/// entries — either way, never a second computation).
#[test]
fn concurrent_clients_share_the_single_flight_cache() {
    const CLIENTS: usize = 4;
    let mut server = start_server(4, 64, 4);
    let addr = server.local_addr();
    let outputs: Vec<WireOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let output = client
                        .count("glet1")
                        .seed(99)
                        .budget(16)
                        .run()
                        .expect("count");
                    client.bye().expect("clean goodbye");
                    output
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for output in &outputs[1..] {
        assert_eq!(output.estimate.per_trial, outputs[0].estimate.per_trial);
        assert_eq!(
            output.estimate.estimated_matches.to_bits(),
            outputs[0].estimate.estimated_matches.to_bits()
        );
    }
    let metrics = server.service().metrics();
    assert_eq!(metrics.cache_misses, 1, "exactly one computation");
    assert_eq!(metrics.cache_hits, (CLIENTS - 1) as u64);
    assert_eq!(metrics.jobs_completed, CLIENTS as u64);
    server.shutdown();
}

/// Cancelling mid-stream stops the job at the next chunk boundary: the
/// terminal frame is a `Final` with `StopReason::Cancelled` carrying the
/// partial anytime estimate, which replays bit-identically — and the
/// partial result is never cached.
#[test]
fn cancel_mid_stream_yields_a_partial_cancelled_final() {
    let graph = test_graph();
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&graph), server_config(1, 16, 2))
        .expect("ephemeral bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let budget: u64 = 200_000; // far more than can run before the cancel lands
    let mut stream = client
        .count("cycle(3)")
        .seed(5)
        .budget(budget)
        .precision(Precision::within(1e-12))
        .stream()
        .expect("send count");
    let mut cancelled = false;
    let mut saw_chunks = 0usize;
    let mut final_output = None;
    while let Some(event) = stream.next() {
        match event.expect("stream event") {
            StreamEvent::Chunk(_) => {
                saw_chunks += 1;
                if !cancelled {
                    stream.cancel().expect("send cancel");
                    cancelled = true;
                }
            }
            StreamEvent::Final(output) => final_output = Some(output),
        }
    }
    let output = final_output.expect("terminal frame");
    assert!(saw_chunks >= 1);
    assert_eq!(output.stop, StopReason::Cancelled);
    assert!(
        output.trials_run < budget,
        "cancel must stop before the budget: ran {}",
        output.trials_run
    );
    assert_eq!(output.estimate.per_trial.len() as u64, output.trials_run);
    // The partial estimate is still anytime-consistent.
    let engine = Engine::new(&graph);
    let query = subgraph_counting::query::Pattern::parse("cycle(3)")
        .expect("well-formed")
        .into_query();
    let mut replay = engine
        .count(&query)
        .seed(5)
        .estimate_incremental()
        .expect("plannable");
    replay.run_chunk(output.trials_run as usize);
    assert_eq!(
        replay.estimate().unwrap().estimated_matches.to_bits(),
        output.estimate.estimated_matches.to_bits()
    );
    // Cancelled outputs are not cached: nothing is stored under this key.
    let metrics = server.service().metrics();
    assert!(metrics.jobs_cancelled >= 1);
    assert_eq!(metrics.cached_results, 0);
    client.bye().expect("clean goodbye");
    server.shutdown();
}

/// With zero workers and a one-slot queue, the second submission is
/// rejected at admission — surfacing on the wire as the one *retryable*
/// error kind.
#[test]
fn queue_full_is_a_typed_retryable_wire_error() {
    let mut server = start_server(0, 1, 4);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Fills the only queue slot; never completes (no workers), so drop the
    // stream without reading it.
    let _ = client
        .count("cycle(3)")
        .seed(1)
        .stream()
        .expect("first submission admitted");
    let err = client
        .count("cycle(3)")
        .seed(2)
        .run()
        .expect_err("second submission must be rejected");
    match err {
        ClientError::Remote(frame) => {
            assert_eq!(frame.kind, ErrorKind::QueueFull);
            assert!(frame.kind.is_retryable());
            assert!(frame.message.contains("full"), "message: {}", frame.message);
        }
        other => panic!("expected a remote queue-full error, got {other}"),
    }
    let metrics = server.service().metrics();
    assert_eq!(metrics.jobs_rejected, 1);
    server.shutdown();
}

/// Batch members stream and complete independently, and each is
/// bit-identical to its solo `Service::run`.
#[test]
fn wire_batches_match_solo_service_runs_bitwise() {
    let mut server = start_server(2, 64, 4);
    let reference = Service::with_config(test_graph(), ServiceConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let members = [
        ("cycle(3)", 21u64, 10u64),
        ("cycle(4)", 21, 10),
        ("glet1", 4, 6),
    ];
    let requests = members
        .iter()
        .map(|(pattern, seed, budget)| {
            subgraph_counting::net::BatchRequest::new(*pattern)
                .seed(*seed)
                .budget(*budget)
        })
        .collect();
    let results = client.batch(requests).expect("batch transport");
    assert_eq!(results.len(), members.len());
    for ((pattern, seed, budget), result) in members.iter().zip(results) {
        let over_wire = result.unwrap_or_else(|e| panic!("member {pattern} failed: {e}"));
        let local = reference
            .run(
                CountJob::from_pattern_str(pattern)
                    .unwrap()
                    .seed(*seed)
                    .budget(*budget as usize),
            )
            .unwrap();
        assert_outputs_bit_identical(&over_wire, &local, pattern);
    }
    assert_eq!(server.service().metrics().batches_submitted, 1);
    client.bye().expect("clean goodbye");
    server.shutdown();
}

/// Malformed patterns come back as spanned parse errors carrying the
/// caret diagnostic — for `count` and `explain` alike — and the connection
/// stays usable afterwards.
#[test]
fn malformed_patterns_are_spanned_errors_with_caret_diagnostics() {
    let mut server = start_server(1, 16, 4);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for attempt in ["count", "explain"] {
        let err = match attempt {
            "count" => client.count("a--b").run().expect_err("must fail"),
            _ => client.explain("a--b").expect_err("must fail"),
        };
        match err {
            ClientError::Remote(frame) => {
                assert_eq!(frame.kind, ErrorKind::Parse, "{attempt}");
                assert_eq!(frame.span, Some((2, 3)), "{attempt}");
                let diagnostic = frame.diagnostic.as_deref().expect("caret diagnostic");
                assert!(diagnostic.contains('^'), "{attempt}: {diagnostic}");
                assert!(diagnostic.contains("a--b"), "{attempt}: {diagnostic}");
            }
            other => panic!("{attempt}: expected a remote parse error, got {other}"),
        }
    }
    // The connection survives pattern-level errors: a well-formed query
    // still answers.
    let output = client.count("cycle(3)").budget(4).run().expect("recovery");
    assert_eq!(output.trials_run, 4);
    client.bye().expect("clean goodbye");
    server.shutdown();
}

/// Protocol-level misbehaviour gets a typed `bad-frame`/`bad-request`
/// error and a closed connection — the server never hangs or panics.
#[test]
fn malformed_frames_are_rejected_with_typed_errors() {
    use std::io::{Read, Write};
    let mut server = start_server(1, 16, 4);
    let addr = server.local_addr();

    // An unknown tag after a proper hello.
    {
        let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
        // hello first so the frame reaches the dispatcher.
        let hello = subgraph_counting::net::Request::Hello {
            version: subgraph_counting::net::PROTOCOL_VERSION,
        };
        let payload = hello.encode();
        let mut frame = ((payload.len() + 1) as u32).to_be_bytes().to_vec();
        frame.push(0x01);
        frame.extend_from_slice(&payload);
        raw.write_all(&frame).unwrap();
        // Unknown tag 0x7F, empty payload.
        raw.write_all(&1u32.to_be_bytes()).unwrap();
        raw.write_all(&[0x7F]).unwrap();
        let mut bytes = Vec::new();
        raw.read_to_end(&mut bytes).expect("server closes cleanly");
        // The reply stream holds hello-ok then a bad-frame error.
        let mut cursor = std::io::Cursor::new(bytes);
        let first = subgraph_counting::net::wire::read_frame(&mut cursor, 1 << 20)
            .unwrap()
            .expect("hello-ok frame");
        assert_eq!(first.tag, 0x81);
        let second = subgraph_counting::net::wire::read_frame(&mut cursor, 1 << 20)
            .unwrap()
            .expect("error frame");
        let response =
            subgraph_counting::net::Response::decode(second.tag, &second.payload).unwrap();
        match response {
            subgraph_counting::net::Response::Error(frame) => {
                assert_eq!(frame.id, 0);
                assert_eq!(frame.kind, ErrorKind::BadFrame);
            }
            other => panic!("expected an error frame, got tag 0x{:02x}", other.tag()),
        }
    }

    // A verb before hello is a bad request.
    {
        let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
        let stats = subgraph_counting::net::Request::Stats;
        let payload = stats.encode();
        let mut frame = ((payload.len() + 1) as u32).to_be_bytes().to_vec();
        frame.push(stats.tag());
        frame.extend_from_slice(&payload);
        raw.write_all(&frame).unwrap();
        let mut bytes = Vec::new();
        raw.read_to_end(&mut bytes).expect("server closes cleanly");
        let mut cursor = std::io::Cursor::new(bytes);
        let reply = subgraph_counting::net::wire::read_frame(&mut cursor, 1 << 20)
            .unwrap()
            .expect("error frame");
        let response = subgraph_counting::net::Response::decode(reply.tag, &reply.payload).unwrap();
        match response {
            subgraph_counting::net::Response::Error(frame) => {
                assert_eq!(frame.kind, ErrorKind::BadRequest);
            }
            other => panic!("expected an error frame, got tag 0x{:02x}", other.tag()),
        }
    }

    assert!(server.stats().protocol_errors >= 2);
    server.shutdown();
}

/// A client that starts a long streaming job and then vanishes without
/// reading must not wedge the shared worker pool: its socket dies (here
/// via the RST a kernel sends when a connection closes with unread data —
/// the same `Conn::send` failure path a write timeout takes), the
/// connection is declared dead, the job is cancelled at its next chunk
/// boundary, and other clients (and shutdown) proceed normally.
#[test]
fn a_client_that_vanishes_mid_stream_gets_its_job_cancelled() {
    use std::io::Write;
    use std::time::{Duration, Instant};
    let mut config = server_config(1, 16, 2);
    config.write_timeout = Duration::from_millis(250);
    let mut server = Server::bind("127.0.0.1:0", test_graph(), config).expect("ephemeral bind");
    let addr = server.local_addr();

    // A raw socket that handshakes and submits an effectively endless
    // streaming job.
    let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
    let hello = subgraph_counting::net::Request::Hello {
        version: subgraph_counting::net::PROTOCOL_VERSION,
    };
    let payload = hello.encode();
    let mut frame = ((payload.len() + 1) as u32).to_be_bytes().to_vec();
    frame.push(hello.tag());
    frame.extend_from_slice(&payload);
    raw.write_all(&frame).unwrap();
    let reply = subgraph_counting::net::wire::read_frame(&mut raw, 1 << 20)
        .unwrap()
        .expect("hello-ok");
    assert_eq!(reply.tag, 0x81);
    let count = subgraph_counting::net::Request::Count(subgraph_counting::net::CountSpec {
        id: 1,
        pattern: "cycle(3)".to_string(),
        algorithm: subgraph_counting::Algorithm::DegreeBased,
        seed: 5,
        budget: 1 << 40,
        precision: Some(Precision::within(1e-15)),
        trace: None,
    });
    let payload = count.encode();
    let mut frame = ((payload.len() + 1) as u32).to_be_bytes().to_vec();
    frame.push(count.tag());
    frame.extend_from_slice(&payload);
    raw.write_all(&frame).unwrap();
    // Wait for the first streamed chunk (the job is computing on the only
    // worker), then vanish: dropping the socket with chunk frames still
    // unread makes the kernel reset the connection, so the server's next
    // chunk write fails.
    let first = subgraph_counting::net::wire::read_frame(&mut raw, 1 << 20)
        .unwrap()
        .expect("first chunk");
    assert_eq!(first.tag, 0x82);
    drop(raw);
    // The server must cancel the orphaned job rather than hold the (only)
    // worker hostage streaming into a dead socket.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.service().metrics().jobs_cancelled == 0 {
        assert!(
            Instant::now() < deadline,
            "vanished client was never detected: {:?}",
            server.service().metrics()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The worker pool is usable again: a healthy client is served.
    let mut client = Client::connect(addr).expect("connect");
    let output = client
        .count("cycle(3)")
        .seed(1)
        .budget(4)
        .run()
        .expect("healthy client");
    assert_eq!(output.trials_run, 4);
    client.bye().expect("clean goodbye");
    // And shutdown completes with the orphaned job fully settled.
    server.shutdown();
    assert_eq!(server.stats().streams_active, 0);
}

/// Stats travel the wire in full: the decoded service metrics snapshot
/// renders through the same stable `Display` form the server prints.
#[test]
fn stats_verb_round_trips_the_metrics_snapshot() {
    let mut server = start_server(1, 16, 4);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .count("cycle(3)")
        .seed(8)
        .budget(8)
        .run()
        .expect("count");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.service.jobs_submitted, 1);
    assert_eq!(stats.service.jobs_completed, 1);
    assert_eq!(stats.service.trials_executed, 8);
    assert!(stats.server.streams_opened >= 1);
    assert!(stats.server.frames_written >= 2);
    // The wire snapshot and a direct snapshot render identically through
    // the stable text contract (both taken at quiescence).
    assert_eq!(
        stats.service.to_string(),
        server.service().metrics().to_string()
    );
    let text = stats.service.to_string();
    assert!(text.starts_with("jobs_submitted"));
    assert!(text.contains("\ntrials_saved"));
    client.bye().expect("clean goodbye");
    server.shutdown();
}
