//! Property tests on the `sgc-net` wire codec.
//!
//! The codec is hand-rolled, so these pin down the safety contract
//! directly: decoding arbitrary bytes never panics (it returns typed
//! [`WireError`]s / [`FrameError`]s), every truncation or padding of a
//! valid encoding is rejected, encodings are canonical (decode∘encode is
//! the identity on accepted byte strings), and frames round-trip through
//! the length-prefixed transport layer — including f64 payloads with
//! arbitrary bit patterns, which must survive bit-exactly.

use proptest::prelude::*;
use subgraph_counting::core::Algorithm;
use subgraph_counting::net::wire::{read_frame, write_frame, FrameError};
use subgraph_counting::net::{ChunkFrame, CountSpec, Request, Response, DEFAULT_MAX_FRAME_LEN};
use subgraph_counting::Precision;

/// A small pool of pattern texts (codec-level: the server parses later, so
/// even ill-formed and empty patterns must travel unharmed).
fn pattern_from(selector: u8) -> &'static str {
    const POOL: [&str; 6] = ["glet1", "cycle(4)", "a-b, b-c, c-a", "", "a--b", "héllo ^"];
    POOL[selector as usize % POOL.len()]
}

fn spec_from(id: u64, selector: u8, seed: u64, budget: u64, precision: u8) -> CountSpec {
    CountSpec {
        id,
        pattern: pattern_from(selector).to_string(),
        algorithm: if selector.is_multiple_of(2) {
            Algorithm::DegreeBased
        } else {
            Algorithm::PathSplitting
        },
        seed,
        budget,
        precision: match precision {
            0 => None,
            p => Some(Precision {
                target: p as f64 * 1e-3,
                confidence: 0.95,
            }),
        },
        trace: (seed % 2 == 1).then_some(seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes through both decoders: no panic, and when a payload
    /// *is* accepted, re-encoding reproduces it byte for byte (encodings
    /// are canonical, so the wire form is a bijection onto its image).
    #[test]
    fn decoding_random_garbage_never_panics_and_accepts_only_canonical_bytes(
        tag in 0u8..255,
        bytes in proptest::collection::vec(0u8..255, 0..64),
    ) {
        if let Ok(request) = Request::decode(tag, &bytes) {
            prop_assert_eq!(request.tag(), tag);
            prop_assert_eq!(request.encode(), bytes.clone());
        }
        if let Ok(response) = Response::decode(tag, &bytes) {
            prop_assert_eq!(response.tag(), tag);
            prop_assert_eq!(response.encode(), bytes);
        }
    }

    /// Random count specs round-trip exactly through the request codec.
    #[test]
    fn count_specs_round_trip(
        params in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..1_000_000),
        knobs in (0u8..255, 0u8..8),
    ) {
        let ((id, seed, budget), (selector, precision)) = (params, knobs);
        let request = Request::Count(spec_from(id, selector, seed, budget, precision));
        let decoded = Request::decode(request.tag(), &request.encode());
        prop_assert_eq!(decoded.as_ref(), Ok(&request));
        // And as the sole member of a batch.
        let Request::Count(spec) = request else { unreachable!() };
        let batch = Request::Batch(vec![spec.clone(), spec]);
        let encoded = batch.encode();
        let decoded_batch = Request::decode(batch.tag(), &encoded);
        prop_assert_eq!(decoded_batch.as_ref(), Ok(&batch));
    }

    /// Every strict prefix of a valid encoding is a typed error, and so is
    /// any padded extension: the decoder consumes exactly the payload,
    /// never silently more or less.
    #[test]
    fn truncated_and_padded_encodings_are_typed_errors(
        params in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..1_000_000),
        knobs in (0u8..255, 0u8..8),
        pad in 1usize..9,
    ) {
        let ((id, seed, budget), (selector, precision)) = (params, knobs);
        let request = Request::Count(spec_from(id, selector, seed, budget, precision));
        let payload = request.encode();
        for cut in 0..payload.len() {
            prop_assert!(
                Request::decode(request.tag(), &payload[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not decode", payload.len()
            );
        }
        let mut padded = payload;
        padded.extend(std::iter::repeat_n(0xAA, pad));
        prop_assert!(Request::decode(request.tag(), &padded).is_err());
    }

    /// Frames round-trip through the transport layer, and every truncation
    /// of the byte stream surfaces as a typed frame error — never a panic,
    /// a hang, or a phantom frame.
    #[test]
    fn frames_round_trip_and_truncations_are_typed_errors(
        tag in 0u8..255,
        payload in proptest::collection::vec(0u8..255, 0..64),
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag, &payload, DEFAULT_MAX_FRAME_LEN).unwrap();
        let mut cursor = std::io::Cursor::new(buf.clone());
        let frame = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN)
            .expect("well-formed frame")
            .expect("not at EOF");
        prop_assert_eq!(frame.tag, tag);
        prop_assert_eq!(frame.payload, payload);
        // A second read on the drained stream is a clean end, not an error.
        prop_assert!(matches!(read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN), Ok(None)));
        for cut in 0..buf.len() {
            let mut cursor = std::io::Cursor::new(&buf[..cut]);
            match read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN) {
                Ok(None) => prop_assert_eq!(cut, 0, "mid-frame cut reported as clean EOF"),
                Ok(Some(_)) => prop_assert!(false, "phantom frame from a {cut}-byte prefix"),
                Err(FrameError::Truncated { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error for a {cut}-byte prefix: {e}"),
            }
        }
    }

    /// The frame reader never trusts a declared length beyond the
    /// configured cap: random 4-byte headers either fit or are rejected as
    /// `TooLarge`/`Empty` before any allocation of the declared size.
    #[test]
    fn declared_lengths_beyond_the_cap_are_rejected(
        declared in 0u64..4_294_967_295,
        tag in 0u8..255,
    ) {
        let declared = declared as u32;
        let mut buf = (declared).to_be_bytes().to_vec();
        buf.push(tag); // at most one body byte actually present
        let mut cursor = std::io::Cursor::new(buf);
        const CAP: usize = 1 << 10;
        match read_frame(&mut cursor, CAP) {
            Err(FrameError::Empty) => prop_assert_eq!(declared, 0),
            Err(FrameError::TooLarge { len, max }) => {
                prop_assert_eq!(len, declared as usize);
                prop_assert_eq!(max, CAP);
                prop_assert!(len > CAP);
            }
            Err(FrameError::Truncated { .. }) => {
                prop_assert!(declared as usize > 1 && declared as usize <= CAP);
            }
            Ok(Some(frame)) => {
                prop_assert_eq!(declared, 1);
                prop_assert_eq!(frame.tag, tag);
                prop_assert!(frame.payload.is_empty());
            }
            other => prop_assert!(false, "unexpected outcome: {other:?}"),
        }
    }

    /// Chunk frames carry their f64s bit-exactly — NaN payloads, signed
    /// zeros, subnormals and all — because the codec ships raw IEEE bits.
    #[test]
    fn chunk_frames_preserve_arbitrary_f64_bits(
        counters in (1u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
        bits in (0u64..u64::MAX, 0u64..u64::MAX),
    ) {
        let ((id, trials_run, budget), (subgraph_bits, width_bits)) = (counters, bits);
        let chunk = Response::Chunk(ChunkFrame {
            id,
            trials_run,
            budget,
            estimated_subgraphs: f64::from_bits(subgraph_bits),
            relative_half_width: f64::from_bits(width_bits),
        });
        let decoded = Response::decode(chunk.tag(), &chunk.encode()).expect("round trip");
        let Response::Chunk(decoded) = decoded else { panic!("tag preserved") };
        prop_assert_eq!(decoded.id, id);
        prop_assert_eq!(decoded.estimated_subgraphs.to_bits(), subgraph_bits);
        prop_assert_eq!(decoded.relative_half_width.to_bits(), width_bits);
    }
}
