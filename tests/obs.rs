//! Integration tests of the `sgc-obs` observability layer end to end:
//! the differential guarantee (obs-on ≡ obs-off bit identity — spans and
//! counters read the DP, they never branch it), the text exposition
//! contract (`name value` lines, names unique, sorted, and pinned against
//! a checked-in snapshot), and the `metrics`/`trace` wire verbs over a
//! loopback server.
//!
//! These tests share one process, so they toggle observability only at
//! request/config granularity (never the process-wide switch) and only
//! ever publish the standard metric names.

use std::sync::Arc;
use subgraph_counting::core::KernelKind;
use subgraph_counting::gen::erdos_renyi::gnp;
use subgraph_counting::graph::CsrGraph;
use subgraph_counting::net::{Server, ServerConfig};
use subgraph_counting::query::Registry;
use subgraph_counting::{Algorithm, Engine, Precision};

fn obs_graph() -> CsrGraph {
    gnp(80, 0.1, 0x0B5)
}

/// The one invariant everything else leans on: enabling or disabling
/// observability changes no counted bit, across the registry, both
/// algorithms, and solo vs sharded execution.
#[test]
fn observability_never_perturbs_the_count() {
    let graph = obs_graph();
    let engine = Engine::new(&graph);
    let registry = Registry::builtin();
    for name in registry.names() {
        let query = registry.build(name).unwrap();
        for algorithm in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            for shards in [None, Some(1usize), Some(4)] {
                let run = |obs: bool| {
                    let mut request = engine
                        .count(&query)
                        .algorithm(algorithm)
                        .trials(3)
                        .seed(0xD1FF)
                        .obs(obs);
                    if let Some(shards) = shards {
                        request = request.parallel(false).sharded(shards);
                    }
                    request.estimate().unwrap()
                };
                let on = run(true);
                let off = run(false);
                assert_eq!(
                    on.per_trial, off.per_trial,
                    "{name}/{algorithm}/shards {shards:?}: per-trial counts diverged"
                );
                assert_eq!(
                    on.estimated_matches.to_bits(),
                    off.estimated_matches.to_bits(),
                    "{name}/{algorithm}/shards {shards:?}: estimate bits diverged"
                );
                assert_eq!(
                    on.estimated_subgraphs.to_bits(),
                    off.estimated_subgraphs.to_bits(),
                    "{name}/{algorithm}/shards {shards:?}: subgraph bits diverged"
                );
            }
        }
    }
}

/// Splits an exposition into its names, asserting the line format on the
/// way: exactly `name value` with a u64 value, names strictly ascending
/// (hence unique).
fn parse_exposition(exposition: &str) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for line in exposition.lines() {
        let fields: Vec<&str> = line.split(' ').collect();
        assert_eq!(fields.len(), 2, "not a `name value` line: {line:?}");
        fields[1]
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("value is not a u64: {line:?}"));
        if let Some(previous) = names.last() {
            assert!(
                previous.as_str() < fields[0],
                "names not strictly sorted: {previous} before {}",
                fields[0]
            );
        }
        names.push(fields[0].to_string());
    }
    names
}

/// After a workload touching every layer — solo and sharded engine runs on
/// both kernels, service jobs over loopback including a cache hit, and the
/// wire verbs themselves — the exposition is well formed and its name set
/// matches the checked-in snapshot exactly. A new metric must be added to
/// `tests/fixtures/metrics_names.txt` (append-only: renames break scrapers).
#[test]
fn exposition_names_match_the_checked_in_snapshot() {
    let graph = obs_graph();
    // Engine layer: sharded + solo runs on both kernels populate the
    // engine_*, kernel_*, and shard_* metrics and the DP/exchange spans.
    {
        let engine = Engine::new(&graph);
        let query = subgraph_counting::query::catalog::triangle();
        for kernel in [KernelKind::Scalar, KernelKind::Columnar] {
            engine
                .count(&query)
                .kernel(kernel)
                .trials(2)
                .seed(1)
                .estimate()
                .unwrap();
            engine
                .count(&query)
                .kernel(kernel)
                .parallel(false)
                .sharded(2)
                .trials(2)
                .seed(1)
                .estimate()
                .unwrap();
        }
    }
    // Service + net layers over loopback: a computed job (with precision,
    // so the estimator chunks), its cache-hit repeat, and the verbs.
    let mut server = Server::bind("127.0.0.1:0", Arc::new(graph), ServerConfig::default())
        .expect("loopback bind");
    let mut client =
        subgraph_counting::net::Client::connect(server.local_addr()).expect("loopback connect");
    for _ in 0..2 {
        let output = client
            .count("cycle(3)")
            .seed(9)
            .budget(16)
            .precision(Precision::within(0.5))
            .run()
            .expect("triangle counts");
        assert!(output.trials_run >= 1);
    }
    let exposition = client.metrics().expect("metrics verb");
    client.bye().expect("clean goodbye");
    server.shutdown();

    let names = parse_exposition(&exposition);
    let expected: Vec<&str> = include_str!("fixtures/metrics_names.txt").lines().collect();
    assert_eq!(
        names, expected,
        "exposition names drifted from tests/fixtures/metrics_names.txt \
         (the name set is an append-only contract)"
    );
}

/// The `metrics` and `trace` verbs round-trip well-formed payloads over a
/// live connection, and a client-stamped trace ID surfaces in the log.
#[test]
fn metrics_and_trace_verbs_work_over_loopback() {
    let mut server = Server::bind(
        "127.0.0.1:0",
        Arc::new(obs_graph()),
        ServerConfig::default(),
    )
    .expect("loopback bind");
    let mut client =
        subgraph_counting::net::Client::connect(server.local_addr()).expect("loopback connect");

    // Before any job: both verbs answer (the trace log just says so).
    let report = client.trace_log().expect("trace verb on idle server");
    assert!(report.contains("no traces recorded"), "report: {report}");

    let output = client
        .count("cycle(4)")
        .seed(3)
        .budget(8)
        .trace(0xFACE)
        .run()
        .expect("cycle(4) counts");
    assert_eq!(output.trials_run, 8);

    let exposition = client.metrics().expect("metrics verb");
    let names = parse_exposition(&exposition);
    assert!(!names.is_empty());
    // The job left footprints in every layer the exposition covers.
    let value = |name: &str| {
        exposition
            .lines()
            .find_map(|line| line.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
            .parse::<u64>()
            .unwrap()
    };
    assert!(value("engine_runs") >= 1);
    assert!(value("service_jobs_completed") >= 1);
    assert!(value("net_frames_written") >= 1);
    assert!(value("span_coloring_count") >= 1);

    let report = client.trace_log().expect("trace verb");
    assert!(
        report.contains("trace_id=64206"), // 0xFACE: the client-stamped ID
        "client trace ID missing from the log:\n{report}"
    );
    assert!(
        report.contains("outcome=budget_exhausted"),
        "report: {report}"
    );
    client.bye().expect("clean goodbye");
    server.shutdown();
}
