//! The pattern front door, end to end.
//!
//! * parse/render round trip: `render(q).parse() == q`, property-tested on
//!   random connected query graphs (and graphs with isolated nodes),
//! * text path ≡ constructor path: counting a parsed pattern is
//!   bit-identical to counting the equivalent catalog constructor, for
//!   every registered query, through both the `Engine` and the `Service`
//!   (where the two paths also share one result-cache entry),
//! * `explain` agrees with the planner: the chosen candidate is exactly the
//!   heuristic plan the engine caches,
//! * malformed patterns surface as spanned typed errors at every layer,
//!   never as panics.

use proptest::prelude::*;
use std::sync::Arc;
use subgraph_counting::gen::erdos_renyi::gnp;
use subgraph_counting::query::{catalog, heuristic_plan, PlanCost};
use subgraph_counting::{
    CountJob, Engine, Pattern, PatternErrorKind, QueryGraph, Registry, Service, ServiceConfig,
    SgcError,
};

/// A connected query on `n` nodes: a spanning path plus whatever extra
/// simple edges the selectors produce.
fn connected_query(n: usize, extras: &[(u8, u8)]) -> QueryGraph {
    let mut q = QueryGraph::new(n);
    for i in 1..n {
        q.add_edge((i - 1) as u8, i as u8).unwrap();
    }
    for &(a, b) in extras {
        let a = (a as usize % n) as u8;
        let b = (b as usize % n) as u8;
        if a != b && !q.has_edge(a, b) {
            q.add_edge(a, b).unwrap();
        }
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(render(q)) == q` on random connected query graphs.
    #[test]
    fn parse_render_round_trip_on_connected_queries(
        n in 2usize..13,
        extras in proptest::collection::vec((0u8..13, 0u8..13), 0..24),
    ) {
        let q = connected_query(n, &extras);
        prop_assert!(q.is_connected());
        let rendered = q.to_string();
        let reparsed: QueryGraph = rendered.parse().unwrap();
        prop_assert_eq!(&reparsed, &q, "round trip through {}", rendered);
        // The rendered form is also what Pattern::from_query carries.
        let wrapped = Pattern::from_query(q.clone());
        prop_assert_eq!(wrapped.text(), rendered.as_str());
    }

    /// The round trip also preserves isolated nodes (no spanning path).
    #[test]
    fn parse_render_round_trip_with_isolated_nodes(
        n in 1usize..13,
        extras in proptest::collection::vec((0u8..13, 0u8..13), 0..16),
    ) {
        let mut q = QueryGraph::new(n);
        for &(a, b) in &extras {
            let a = (a as usize % n) as u8;
            let b = (b as usize % n) as u8;
            if a != b && !q.has_edge(a, b) {
                q.add_edge(a, b).unwrap();
            }
        }
        let reparsed: QueryGraph = q.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, q);
    }
}

#[test]
fn every_catalog_query_is_expressible_and_counts_bit_identically() {
    let graph = gnp(40, 0.2, 11);
    let engine = Engine::new(&graph);
    for name in catalog::names() {
        let built = catalog::query_by_name(name).unwrap();
        let by_ctor = engine
            .count(&built)
            .trials(3)
            .seed(99)
            .estimate()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        // Three equivalent texts: the registered name, the canonical
        // numeric render, and (via Pattern) the parsed wrapper.
        for text in [name.to_string(), built.to_string()] {
            let by_text = engine
                .count_str(&text)
                .unwrap_or_else(|e| panic!("{name} as {text:?}: {e}"))
                .trials(3)
                .seed(99)
                .estimate()
                .unwrap();
            assert_eq!(by_text.per_trial, by_ctor.per_trial, "{name} via {text:?}");
            assert_eq!(
                by_text.estimated_matches.to_bits(),
                by_ctor.estimated_matches.to_bits(),
                "{name} via {text:?}"
            );
        }
        let pattern = Pattern::parse(name).unwrap();
        let via_pattern = engine
            .count(&pattern)
            .trials(3)
            .seed(99)
            .estimate()
            .unwrap();
        assert_eq!(via_pattern.per_trial, by_ctor.per_trial);
    }
    // The text and constructor paths also share plan-cache entries: 11
    // catalog queries counted 4 ways each is still 11 cached plans.
    assert_eq!(engine.cached_plans(), catalog::names().len());
}

#[test]
fn generator_texts_match_their_constructors_through_the_engine() {
    let graph = gnp(32, 0.2, 3);
    let engine = Engine::new(&graph);
    for (text, query) in [
        ("cycle(5)", catalog::cycle(5)),
        ("path(4)", catalog::path(4)),
        ("star(6)", catalog::star(6)),
        ("clique(3)", catalog::clique(3)),
        ("binary_tree(3)", catalog::binary_tree(3)),
        ("a-b, b-c, c-a", catalog::triangle()),
    ] {
        let by_text = engine
            .count_str(text)
            .unwrap()
            .trials(4)
            .seed(5)
            .estimate()
            .unwrap();
        let by_ctor = engine.count(&query).trials(4).seed(5).estimate().unwrap();
        assert_eq!(by_text.per_trial, by_ctor.per_trial, "{text}");
    }
}

#[test]
fn text_and_constructor_jobs_share_one_service_cache_entry() {
    let graph = Arc::new(gnp(32, 0.2, 7));
    let service = Service::with_config(
        graph,
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            chunk_trials: 4,
            trial_parallelism: false,
            obs: true,
            ..ServiceConfig::default()
        },
    );
    let by_text = service
        .run(CountJob::from_pattern_str("glet1").unwrap().budget(8))
        .unwrap();
    let by_ctor = service
        .run(CountJob::new(catalog::glet1()).budget(8))
        .unwrap();
    assert!(!by_text.from_cache);
    assert!(by_ctor.from_cache, "identical canonical key: must be a hit");
    assert_eq!(by_text.estimate.per_trial, by_ctor.estimate.per_trial);
    assert_eq!(
        by_text.estimate.estimated_matches.to_bits(),
        by_ctor.estimate.estimated_matches.to_bits()
    );
    let metrics = service.metrics();
    assert_eq!(metrics.cache_misses, 1);
    assert_eq!(metrics.cache_hits, 1);
    // An equivalent edge-list text joins the same entry too.
    let by_render = service
        .run(
            CountJob::from_pattern_str(&catalog::glet1().to_string())
                .unwrap()
                .budget(8),
        )
        .unwrap();
    assert!(by_render.from_cache);
}

#[test]
fn explain_reports_the_exact_plan_the_engine_runs() {
    let graph = gnp(32, 0.2, 1);
    let engine = Engine::new(&graph);
    for name in catalog::names() {
        let query = catalog::query_by_name(name).unwrap();
        let report = engine.explain(&query).unwrap();
        let heuristic = heuristic_plan(&query).unwrap();
        assert_eq!(
            report.chosen_candidate().signature,
            heuristic.signature(),
            "{name}: explain must pick what the engine caches"
        );
        assert_eq!(report.chosen_candidate().cost, PlanCost::of(&heuristic));
        assert!(report.chosen_candidate().chosen);
        assert_eq!(report.num_nodes, query.num_nodes());
        assert_eq!(report.graph_vertices, graph.num_vertices());
        // explain_str over the name agrees with explain over the query.
        assert_eq!(engine.explain_str(name).unwrap(), report, "{name}");
        // The report's pattern field re-parses to the same query.
        assert_eq!(report.pattern.parse::<QueryGraph>().unwrap(), query);
        // The rendered text mentions every candidate.
        let text = report.to_string();
        assert!(text.contains("<-- chosen"), "{name}: {text}");
        assert!(text.contains(&format!(
            "{} candidate decomposition(s)",
            report.candidates.len()
        )));
    }
}

#[test]
fn malformed_patterns_are_spanned_errors_at_every_layer() {
    let graph = gnp(16, 0.2, 0);
    let engine = Engine::new(&graph);
    for bad in [
        "", "a-a", "a--b", "cycle()", "cycle(2)", "glet99", "0-199", "a b", "a-b,,c",
    ] {
        // Engine layer.
        match engine.count_str(bad).err() {
            Some(SgcError::Pattern(e)) => {
                assert!(e.span().end <= bad.len().max(1), "{bad}: {e:?}");
                assert!(!e.diagnostic().is_empty());
            }
            other => panic!("{bad}: expected SgcError::Pattern, got {other:?}"),
        }
        assert!(matches!(engine.explain_str(bad), Err(SgcError::Pattern(_))));
        // Service layer (rejected before submission).
        assert!(CountJob::from_pattern_str(bad).is_err(), "{bad}");
        // Query layer.
        assert!(bad.parse::<QueryGraph>().is_err(), "{bad}");
    }
    // Well-formed but unplannable: typed Query errors, not Pattern ones.
    assert!(matches!(
        engine.count_str("clique(4)").unwrap().run(),
        Err(SgcError::Query(_))
    ));
    assert!(matches!(
        engine.explain_str("a-b, c-d"),
        Err(SgcError::Query(_))
    ));
}

#[test]
fn runtime_registered_patterns_flow_through_parse_with() {
    let mut registry = Registry::with_catalog();
    let bowtie: QueryGraph = "a-b-c-a, c-d-e-c".parse().unwrap();
    registry
        .register("bowtie", "two triangles sharing a node", bowtie.clone())
        .unwrap();
    let pattern = Pattern::parse_with(&registry, "bowtie").unwrap();
    assert_eq!(*pattern, bowtie);
    // Unknown in the builtin registry, with the known-name list in the error.
    match Pattern::parse("bowtie").unwrap_err().kind() {
        PatternErrorKind::UnknownName { known, .. } => {
            assert!(known.iter().any(|n| n == "satellite"));
        }
        other => panic!("expected UnknownName, got {other:?}"),
    }
    // The registered pattern counts like its edge-list text.
    let graph = gnp(24, 0.25, 2);
    let engine = Engine::new(&graph);
    let via_registry = engine.count(&pattern).trials(3).seed(1).estimate().unwrap();
    let via_text = engine
        .count_str("a-b-c-a, c-d-e-c")
        .unwrap()
        .trials(3)
        .seed(1)
        .estimate()
        .unwrap();
    assert_eq!(via_registry.per_trial, via_text.per_trial);
}
