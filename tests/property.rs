//! Property-based tests (proptest) on the core invariants.
//!
//! Random small data graphs and colorings are generated and the following
//! invariants checked:
//!
//! * PS, DB and the brute-force oracle agree on the colorful count,
//! * the count is invariant under the choice of decomposition plan,
//! * sharded execution is bit-identical to single-shard execution for every
//!   shard count (the rank-runtime determinism contract),
//! * colorful counts never exceed total match counts,
//! * signatures behave like sets (engine-level algebraic laws).

use proptest::prelude::*;
use subgraph_counting::core::brute::{count_colorful_matches, count_matches};
use subgraph_counting::core::{Algorithm, Engine};
use subgraph_counting::engine::Signature;
use subgraph_counting::gen::{chung_lu, gnm, power_law_degrees, rmat, RmatParams};
use subgraph_counting::graph::{Coloring, CsrGraph, GraphBuilder};
use subgraph_counting::query::{catalog, QueryGraph, Registry};

/// Builds a random graph on `n` vertices from a list of edge selectors.
fn graph_from_edges(n: usize, edges: &[(u8, u8)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edges {
        b.add_edge((u as usize % n) as u32, (v as usize % n) as u32);
    }
    b.build()
}

/// A small graph from one of the real generator families (the graphs the
/// experiment harness actually runs on): Erdős–Rényi, Chung-Lu over a
/// truncated power-law degree sequence, or R-MAT. `n ≤ 12` keeps the
/// brute-force oracle exact and fast even for the 11-node satellite query.
fn generated_graph(family: u8, n: usize, seed: u64) -> CsrGraph {
    debug_assert!(n <= 12);
    match family % 3 {
        0 => gnm(n, 2 * n, seed),
        1 => {
            let degrees: Vec<f64> = power_law_degrees(n, 1.8).iter().map(|d| d * 1.5).collect();
            chung_lu(&degrees, seed)
        }
        _ => {
            // Scale 3 = 8 vertices; a small edge factor keeps it sparse.
            let params = RmatParams {
                edge_factor: 3,
                ..RmatParams::paper()
            };
            rmat(3, params, seed)
        }
    }
}

/// Every query of the builtin registry (the ten Figure 8 analogs plus the
/// 11-node satellite worked example).
fn registry_queries() -> Vec<(String, QueryGraph)> {
    Registry::builtin()
        .entries()
        .map(|e| (e.name().to_string(), e.query().clone()))
        .collect()
}

fn small_queries() -> Vec<(&'static str, QueryGraph)> {
    vec![
        ("triangle", catalog::triangle()),
        ("c4", catalog::cycle(4)),
        ("c5", catalog::cycle(5)),
        ("glet1", catalog::glet1()),
        ("youtube", catalog::youtube()),
        ("dros", catalog::dros()),
        ("ecoli1", catalog::ecoli1()),
        ("path4", catalog::path(4)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PS, DB and the oracle agree on random graphs and random colorings.
    #[test]
    fn algorithms_agree_with_oracle(
        n in 6usize..14,
        edges in proptest::collection::vec((0u8..14, 0u8..14), 8..40),
        seed in 0u64..1000,
    ) {
        let graph = graph_from_edges(n, &edges);
        let engine = Engine::new(&graph);
        for (name, query) in small_queries() {
            let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), seed);
            let expected = count_colorful_matches(&graph, &query, &coloring);
            for alg in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
                let got = engine
                    .count(&query)
                    .algorithm(alg)
                    .coloring(&coloring)
                    .run()
                    .unwrap()
                    .colorful_matches;
                prop_assert_eq!(got, expected, "{} with {}", name, alg);
            }
        }
    }

    /// Sharded counts equal single-shard counts on random graphs, for every
    /// catalog query, both algorithms, and every shard count in 1..=8 — the
    /// sharded runtime's determinism contract.
    #[test]
    fn sharded_equals_single_shard(
        n in 6usize..14,
        edges in proptest::collection::vec((0u8..14, 0u8..14), 8..40),
        seed in 0u64..1000,
        algorithm_selector in 0u8..2,
    ) {
        let graph = graph_from_edges(n, &edges);
        let engine = Engine::new(&graph);
        let algorithm = if algorithm_selector == 0 {
            Algorithm::PathSplitting
        } else {
            Algorithm::DegreeBased
        };
        for (name, query) in small_queries() {
            let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), seed);
            let single = engine
                .count(&query)
                .algorithm(algorithm)
                .coloring(&coloring)
                .sharded(1)
                .run()
                .unwrap()
                .colorful_matches;
            for shards in 2..=8usize {
                let sharded = engine
                    .count(&query)
                    .algorithm(algorithm)
                    .coloring(&coloring)
                    .sharded(shards)
                    .run()
                    .unwrap()
                    .colorful_matches;
                prop_assert_eq!(sharded, single, "{} at {} shards", name, shards);
            }
        }
    }

    /// The differential suite: on random graphs from the real generator
    /// families (ER / Chung-Lu / R-MAT, n ≤ 12), PS, DB and the exact
    /// brute-force oracle agree on every registry query — including the
    /// 11-node satellite worked example.
    #[test]
    fn generators_times_registry_ps_db_brute_agree(
        family in 0u8..3,
        n in 6usize..13,
        graph_seed in 0u64..10_000,
        coloring_seed in 0u64..1000,
    ) {
        let graph = generated_graph(family, n, graph_seed);
        let engine = Engine::new(&graph);
        for (name, query) in registry_queries() {
            let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), coloring_seed);
            let expected = count_colorful_matches(&graph, &query, &coloring);
            for alg in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
                let got = engine
                    .count(&query)
                    .algorithm(alg)
                    .coloring(&coloring)
                    .run()
                    .unwrap()
                    .colorful_matches;
                prop_assert_eq!(got, expected, "{} with {} on family {}", name, alg, family);
            }
        }
    }

    /// `count_batch` is bit-identical to per-query `count(..).estimate()`
    /// on random generated graphs, for the entire registry at once.
    #[test]
    fn batch_equals_solo_on_generated_graphs(
        family in 0u8..3,
        n in 6usize..13,
        graph_seed in 0u64..10_000,
        seed in 0u64..1000,
    ) {
        let graph = generated_graph(family, n, graph_seed);
        let engine = Engine::new(&graph);
        let queries = registry_queries();
        let requests: Vec<_> = queries
            .iter()
            .map(|(_, q)| engine.count(q).trials(2).seed(seed))
            .collect();
        let batch = engine.count_batch(&requests).unwrap();
        for ((name, query), estimate) in queries.iter().zip(&batch.estimates) {
            let solo = engine.count(query).trials(2).seed(seed).estimate().unwrap();
            prop_assert_eq!(&estimate.per_trial, &solo.per_trial, "{}", name);
            prop_assert_eq!(
                estimate.estimated_matches.to_bits(),
                solo.estimated_matches.to_bits(),
                "{}",
                name
            );
        }
    }

    /// Colorful matches are a subset of all matches.
    #[test]
    fn colorful_counts_are_bounded_by_match_counts(
        n in 5usize..12,
        edges in proptest::collection::vec((0u8..12, 0u8..12), 6..30),
        seed in 0u64..1000,
    ) {
        let graph = graph_from_edges(n, &edges);
        let query = catalog::triangle();
        let coloring = Coloring::random(graph.num_vertices(), 3, seed);
        let colorful = count_colorful_matches(&graph, &query, &coloring);
        let all = count_matches(&graph, &query);
        prop_assert!(colorful <= all);
    }

    /// Signature algebra behaves like finite sets. The sampled bits are
    /// placed straddling the u64 word boundary so every law is checked
    /// across both lanes of the two-word representation.
    #[test]
    fn signature_set_laws(a in 0u32..1 << 16, b in 0u32..1 << 16, c in 0u8..128) {
        let sa = Signature::from_words([(a as u64) << 56, (a as u64) >> 8]);
        let sb = Signature::from_words([(b as u64) << 56, (b as u64) >> 8]);
        prop_assert_eq!(sa.union(sb), sb.union(sa));
        prop_assert_eq!(sa.intersection(sb), sb.intersection(sa));
        prop_assert_eq!(sa.union(sa), sa);
        prop_assert!(sa.intersection(sb).is_subset_of(sa));
        prop_assert!(sa.is_subset_of(sa.union(sb)));
        prop_assert_eq!(sa.is_disjoint(sb), sa.intersection(sb).is_empty());
        prop_assert!(sa.with(c).contains(c));
        prop_assert_eq!(sa.with(c).len(), sa.len() + (!sa.contains(c)) as u32);
    }

    /// The degree order is a strict total order and the star center is maximal.
    #[test]
    fn degree_order_is_total(leaves in 2usize..20) {
        let mut b = GraphBuilder::new(leaves + 1);
        for v in 1..=leaves {
            b.add_edge(0, v as u32);
        }
        let g = b.build();
        let order = subgraph_counting::graph::DegreeOrder::new(&g);
        for u in g.vertices() {
            prop_assert!(!order.higher(u, u));
            for v in g.vertices() {
                if u != v {
                    prop_assert!(order.higher(u, v) ^ order.higher(v, u));
                }
            }
            if u != 0 {
                prop_assert!(order.higher(0, u));
            }
        }
    }
}
