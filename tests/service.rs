//! Integration tests of the `sgc-service` layer through the facade crate:
//! the adaptive scheduler's determinism contract (anytime consistency with
//! the batch engine API), early stopping under a precision target, and
//! result-cache correctness under concurrent identical submissions.

use std::sync::Arc;
use subgraph_counting::gen::erdos_renyi::gnp;
use subgraph_counting::graph::CsrGraph;
use subgraph_counting::query::catalog;
use subgraph_counting::{
    BatchJob, CountJob, Engine, Precision, Service, ServiceConfig, ServiceError, StopReason,
};

fn service_graph() -> Arc<CsrGraph> {
    Arc::new(gnp(60, 0.12, 42))
}

fn config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        queue_capacity: 64,
        chunk_trials: 4,
        trial_parallelism: false,
        obs: true,
        ..ServiceConfig::default()
    }
}

/// Acceptance: for a fixed seed, an early-stopped estimate equals a
/// fixed-trial estimate run for exactly the number of trials executed
/// (trial `i` still colors with `seed + i`).
#[test]
fn early_stopped_jobs_are_anytime_consistent_with_the_batch_api() {
    let graph = service_graph();
    let service = Service::with_config(Arc::clone(&graph), config(2));

    for (query, name) in [
        (catalog::triangle(), "triangle"),
        (catalog::cycle(4), "square"),
    ] {
        let output = service
            .run(
                CountJob::new(query.clone())
                    .seed(500)
                    .budget(200)
                    .precision(Precision::within(0.4)),
            )
            .unwrap();
        assert!(output.trials_run >= 1);

        // A plain batch estimate of exactly `trials_run` trials — through a
        // *fresh* engine, so the equality also covers engine construction.
        let batch = Engine::new(&graph)
            .count(&query)
            .trials(output.trials_run)
            .seed(500)
            .estimate()
            .unwrap();
        assert_eq!(
            output.estimate.per_trial, batch.per_trial,
            "{name}: early-stopped per-trial counts must equal a batch run \
             of the same length"
        );
        assert_eq!(
            output.estimate.estimated_matches.to_bits(),
            batch.estimated_matches.to_bits(),
            "{name}: scaled estimates must be bit-identical"
        );
        assert_eq!(
            output.estimate.variance.to_bits(),
            batch.variance.to_bits(),
            "{name}: precision statistics must be bit-identical"
        );
    }
}

/// Acceptance: a precision-satisfied job reports fewer trials than the
/// budget on at least one catalog query.
#[test]
fn precision_targets_save_trials_on_catalog_queries() {
    let graph = service_graph();
    let service = Service::with_config(graph, config(2));
    let budget = 300;
    let mut stopped_early_somewhere = false;

    for query in [catalog::triangle(), catalog::cycle(4), catalog::glet1()] {
        let output = service
            .run(
                CountJob::new(query)
                    .seed(1234)
                    .budget(budget)
                    .precision(Precision::within(0.5)),
            )
            .unwrap();
        assert!(output.trials_run <= budget);
        if output.stop == StopReason::PrecisionMet && output.trials_run < budget {
            stopped_early_somewhere = true;
            // The reported estimate must actually satisfy the target it
            // claims to have met.
            assert!(output.estimate.relative_half_width(0.95) <= 0.5);
        }
    }
    assert!(
        stopped_early_somewhere,
        "a ±50% target should stop at least one catalog query before 300 trials"
    );
    let metrics = service.metrics();
    assert!(metrics.trials_saved > 0);
    assert_eq!(metrics.jobs_completed, 3);

    // Determinism of the scheduler itself: a fresh service stops the same
    // job after exactly the same number of trials.
    let service2 = Service::with_config(service_graph(), config(1));
    let a = service2
        .run(
            CountJob::new(catalog::triangle())
                .seed(1234)
                .budget(budget)
                .precision(Precision::within(0.5)),
        )
        .unwrap();
    let b = Service::with_config(service_graph(), config(4))
        .run(
            CountJob::new(catalog::triangle())
                .seed(1234)
                .budget(budget)
                .precision(Precision::within(0.5)),
        )
        .unwrap();
    assert_eq!(a.trials_run, b.trials_run);
    assert_eq!(a.estimate.per_trial, b.estimate.per_trial);
}

/// Jobs without a precision target run their whole budget, and the result
/// equals the batch API bit for bit.
#[test]
fn unbounded_jobs_exhaust_the_budget_and_match_the_engine() {
    let graph = service_graph();
    let service = Service::with_config(Arc::clone(&graph), config(3));
    let output = service
        .run(CountJob::new(catalog::glet1()).seed(77).budget(20))
        .unwrap();
    assert_eq!(output.trials_run, 20);
    assert_eq!(output.stop, StopReason::BudgetExhausted);
    let batch = service
        .engine()
        .count(&catalog::glet1())
        .trials(20)
        .seed(77)
        .estimate()
        .unwrap();
    assert_eq!(output.estimate.per_trial, batch.per_trial);
}

/// Acceptance: N threads submitting the identical job produce one
/// computation (hit-rate metric ≥ N−1 hits) and all receive bit-identical
/// results.
#[test]
fn concurrent_identical_jobs_compute_once_and_agree_bitwise() {
    const N: usize = 12;
    let service = Service::with_config(service_graph(), config(4));
    let job = CountJob::new(catalog::triangle())
        .seed(9)
        .budget(60)
        .precision(Precision::within(0.3));

    let outputs: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let service = &service;
                let job = job.clone();
                scope.spawn(move || service.run(job).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let reference = &outputs[0];
    for output in &outputs[1..] {
        assert_eq!(output.estimate.per_trial, reference.estimate.per_trial);
        assert_eq!(
            output.estimate.estimated_matches.to_bits(),
            reference.estimate.estimated_matches.to_bits()
        );
        assert_eq!(output.trials_run, reference.trials_run);
        assert_eq!(output.stop, reference.stop);
    }
    // Exactly one submission computed; every other was a cache hit (served
    // from the completed entry or joined onto the in-flight computation).
    assert_eq!(outputs.iter().filter(|o| !o.from_cache).count(), 1);

    let metrics = service.metrics();
    assert_eq!(metrics.cache_misses, 1, "one computation for {N} twins");
    assert!(
        metrics.cache_hits >= (N - 1) as u64,
        "expected at least {} hits, saw {}",
        N - 1,
        metrics.cache_hits
    );
    assert_eq!(metrics.jobs_completed, N as u64);
    assert_eq!(metrics.trials_executed, reference.trials_run as u64);
    assert_eq!(metrics.cached_results, 1);
}

/// Admission control: a full queue is a typed rejection, and shutdown is a
/// typed rejection, never a hang or a panic.
#[test]
fn admission_control_and_shutdown_are_typed() {
    let service = Service::with_config(
        service_graph(),
        ServiceConfig {
            workers: 0, // accept-only: the queue fills deterministically
            queue_capacity: 3,
            chunk_trials: 4,
            trial_parallelism: false,
            obs: true,
            ..ServiceConfig::default()
        },
    );
    let mut handles = Vec::new();
    for seed in 0..3 {
        handles.push(
            service
                .submit(CountJob::new(catalog::triangle()).seed(seed))
                .unwrap(),
        );
    }
    assert_eq!(
        service
            .submit(CountJob::new(catalog::triangle()).seed(99))
            .unwrap_err(),
        ServiceError::QueueFull { capacity: 3 }
    );
    let metrics = service.metrics();
    assert_eq!(metrics.queue_depth, 3);
    assert_eq!(metrics.jobs_rejected, 1);

    service.shutdown();
    for handle in handles {
        assert!(matches!(handle.wait(), Err(ServiceError::ShuttingDown)));
    }
    assert_eq!(
        service
            .submit(CountJob::new(catalog::triangle()))
            .unwrap_err(),
        ServiceError::ShuttingDown
    );
}

/// Counting errors surface through the handle; distinct precision targets
/// are distinct cache keys.
#[test]
fn error_jobs_and_key_separation() {
    let service = Service::with_config(service_graph(), config(2));
    // Unplannable query.
    let mut k4 = subgraph_counting::query::QueryGraph::new(4);
    for a in 0..4u8 {
        for b in (a + 1)..4 {
            k4.add_edge(a, b).unwrap();
        }
    }
    assert!(matches!(
        service.run(CountJob::new(k4)).unwrap_err(),
        ServiceError::Count(subgraph_counting::SgcError::Query(_))
    ));

    // Same query/seed/budget at two precision targets: both compute (the
    // key includes the target), and the tighter target runs at least as
    // many trials.
    let loose = service
        .run(
            CountJob::new(catalog::triangle())
                .seed(5)
                .budget(150)
                .precision(Precision::within(0.6)),
        )
        .unwrap();
    let tight = service
        .run(
            CountJob::new(catalog::triangle())
                .seed(5)
                .budget(150)
                .precision(Precision::within(0.15)),
        )
        .unwrap();
    assert!(!loose.from_cache);
    assert!(!tight.from_cache);
    assert!(tight.trials_run >= loose.trials_run);
    // The shorter run is a strict prefix of the longer one: same seed, same
    // per-trial contract.
    assert_eq!(
        loose.estimate.per_trial[..],
        tight.estimate.per_trial[..loose.trials_run]
    );
}

/// The determinism matrix, service axis: one seed must yield bit-identical
/// estimates across worker counts {1, 4} × submission style (batch vs
/// solo), all agreeing with the raw engine baseline.
#[test]
fn determinism_matrix_workers_by_batch_vs_solo() {
    let graph = service_graph();
    let jobs = [
        CountJob::new(catalog::triangle()).seed(77).budget(6),
        CountJob::new(catalog::cycle(4)).seed(77).budget(6),
        CountJob::new(catalog::glet1()).seed(123).budget(4),
    ];
    // Engine baseline: the determinism contract every cell must hit.
    let engine = Engine::from_shared(Arc::clone(&graph));
    let baselines: Vec<_> = jobs
        .iter()
        .map(|job| {
            engine
                .count(&job.query)
                .trials(job.budget)
                .seed(job.seed)
                .estimate()
                .unwrap()
        })
        .collect();
    for workers in [1usize, 4] {
        // Solo submissions on a fresh service (fresh cache: everything
        // actually computes).
        let solo_service = Service::with_config(Arc::clone(&graph), config(workers));
        for (job, baseline) in jobs.iter().zip(&baselines) {
            let output = solo_service.run(job.clone()).unwrap();
            assert_eq!(
                output.estimate.per_trial, baseline.per_trial,
                "solo at {workers} workers"
            );
            assert_eq!(
                output.estimate.estimated_matches.to_bits(),
                baseline.estimated_matches.to_bits(),
                "solo at {workers} workers"
            );
        }
        // The same jobs as one batch on another fresh service.
        let batch_service = Service::with_config(Arc::clone(&graph), config(workers));
        let outputs = batch_service
            .run_batch(BatchJob::from_jobs(jobs.to_vec()))
            .unwrap();
        for ((job, baseline), output) in jobs.iter().zip(&baselines).zip(outputs) {
            let output = output.unwrap();
            assert_eq!(
                output.estimate.per_trial, baseline.per_trial,
                "batch at {workers} workers, seed {}",
                job.seed
            );
            assert_eq!(
                output.estimate.estimated_matches.to_bits(),
                baseline.estimated_matches.to_bits(),
                "batch at {workers} workers, seed {}",
                job.seed
            );
        }
    }
}
