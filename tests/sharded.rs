//! Integration tests for the sharded rank-runtime.
//!
//! The contract under test: for any query, algorithm, coloring and shard
//! count, `engine.count(&q).sharded(s).run()` returns a count bit-identical
//! to the serial path, while reporting per-shard execution metrics. Shard
//! counts 1, 2, 4 and 8 are exercised on every catalog query, including
//! degenerate layouts (more shards than vertices, single-vertex shards).

use subgraph_counting::core::brute::count_colorful_matches;
use subgraph_counting::core::{Algorithm, Engine, SgcError};
use subgraph_counting::gen::chung_lu;
use subgraph_counting::gen::power_law_degrees;
use subgraph_counting::graph::{Coloring, CsrGraph, GraphBuilder};
use subgraph_counting::query::{catalog, QueryGraph};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn demo_graph() -> CsrGraph {
    let mut b = GraphBuilder::new(12);
    b.extend_edges([
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (4, 0),
        (0, 5),
        (5, 6),
        (6, 1),
        (2, 7),
        (7, 8),
        (8, 3),
        (4, 9),
        (9, 0),
        (5, 2),
        (6, 3),
        (9, 10),
        (10, 11),
        (11, 4),
    ]);
    b.build()
}

fn catalog_queries() -> Vec<(&'static str, QueryGraph)> {
    catalog::FIGURE8_QUERIES
        .iter()
        .map(|spec| (spec.name, (spec.build)()))
        .chain([
            ("triangle", catalog::triangle()),
            ("c4", catalog::cycle(4)),
            ("c5", catalog::cycle(5)),
            ("path4", catalog::path(4)),
        ])
        .collect()
}

#[test]
fn sharded_counts_are_bit_identical_to_serial_on_all_catalog_queries() {
    let graph = demo_graph();
    let engine = Engine::new(&graph);
    for (name, query) in catalog_queries() {
        let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), 17);
        for algorithm in [Algorithm::PathSplitting, Algorithm::DegreeBased] {
            let serial = engine
                .count(&query)
                .algorithm(algorithm)
                .coloring(&coloring)
                .run()
                .unwrap();
            for shards in SHARD_COUNTS {
                let sharded = engine
                    .count(&query)
                    .algorithm(algorithm)
                    .coloring(&coloring)
                    .sharded(shards)
                    .run()
                    .unwrap();
                assert_eq!(
                    sharded.colorful_matches, serial.colorful_matches,
                    "{name} with {algorithm} at {shards} shards"
                );
                let metrics = sharded.metrics.shards.expect("sharded metrics present");
                assert_eq!(metrics.num_shards(), shards);
                assert!(metrics.exchange_rounds > 0);
                // The simulated-rank load attribution is shard-independent:
                // the same operations happen, just on different workers.
                assert_eq!(
                    sharded.metrics.total_ops, serial.metrics.total_ops,
                    "{name} with {algorithm} at {shards} shards"
                );
                assert_eq!(
                    sharded.metrics.load.per_rank(),
                    serial.metrics.load.per_rank(),
                    "{name} with {algorithm} at {shards} shards"
                );
            }
        }
    }
}

#[test]
fn sharded_counts_match_the_brute_force_oracle() {
    let graph = demo_graph();
    let engine = Engine::new(&graph);
    let query = catalog::triangle();
    let coloring = Coloring::random(graph.num_vertices(), 3, 23);
    let expected = count_colorful_matches(&graph, &query, &coloring);
    for shards in SHARD_COUNTS {
        let got = engine
            .count(&query)
            .coloring(&coloring)
            .sharded(shards)
            .run()
            .unwrap()
            .colorful_matches;
        assert_eq!(got, expected, "{shards} shards");
    }
}

#[test]
fn more_shards_than_vertices_still_agrees() {
    // 4 vertices, up to 16 shards: most shards own nothing, single-vertex
    // shards own exactly one vertex.
    let mut b = GraphBuilder::new(4);
    b.extend_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
    let graph = b.build();
    let engine = Engine::new(&graph);
    let query = catalog::triangle();
    let coloring = Coloring::random(graph.num_vertices(), 3, 5);
    let serial = engine
        .count(&query)
        .coloring(&coloring)
        .run()
        .unwrap()
        .colorful_matches;
    for shards in [1, 3, 4, 7, 16] {
        let sharded = engine
            .count(&query)
            .coloring(&coloring)
            .sharded(shards)
            .run()
            .unwrap()
            .colorful_matches;
        assert_eq!(sharded, serial, "{shards} shards");
    }
}

#[test]
fn sharded_single_node_and_single_edge_queries() {
    let graph = demo_graph();
    let engine = Engine::new(&graph);

    // Single-node query: every vertex matches, shards contribute their
    // owned counts through one scalar exchange.
    let one = QueryGraph::new(1);
    let coloring1 = Coloring::from_colors(vec![0; graph.num_vertices()], 1);
    for shards in SHARD_COUNTS {
        let res = engine
            .count(&one)
            .coloring(&coloring1)
            .sharded(shards)
            .run()
            .unwrap();
        assert_eq!(res.colorful_matches, graph.num_vertices() as u64);
        let metrics = res.metrics.shards.expect("sharded metrics present");
        assert_eq!(metrics.exchange_rounds, 1);
    }

    // Single-edge query: counted via a leaf-edge block.
    let edge = QueryGraph::from_edges(2, &[(0, 1)]).unwrap();
    let coloring2 = Coloring::random(graph.num_vertices(), 2, 3);
    let serial = engine
        .count(&edge)
        .coloring(&coloring2)
        .run()
        .unwrap()
        .colorful_matches;
    for shards in SHARD_COUNTS {
        let sharded = engine
            .count(&edge)
            .coloring(&coloring2)
            .sharded(shards)
            .run()
            .unwrap()
            .colorful_matches;
        assert_eq!(sharded, serial, "{shards} shards");
    }
}

#[test]
fn sharded_estimates_are_bit_identical_to_serial_estimates() {
    let degrees: Vec<f64> = power_law_degrees(200, 1.8)
        .iter()
        .map(|d| d * 2.0)
        .collect();
    let graph = chung_lu(&degrees, 7);
    let engine = Engine::new(&graph);
    let query = catalog::glet1();
    let serial = engine
        .count(&query)
        .trials(6)
        .seed(42)
        .parallel(false)
        .estimate()
        .unwrap();
    for shards in SHARD_COUNTS {
        // Sequential trials: each trial genuinely runs through the sharded
        // runtime (shard parallelism within the trial).
        let sharded = engine
            .count(&query)
            .trials(6)
            .seed(42)
            .parallel(false)
            .sharded(shards)
            .estimate()
            .unwrap();
        assert_eq!(sharded.per_trial, serial.per_trial, "{shards} shards");
        assert_eq!(
            sharded.estimated_matches, serial.estimated_matches,
            "{shards} shards"
        );
    }
    // Parallel trials + sharding: the engine parallelises across trials
    // and skips per-trial sharding (it would only serialize the shards);
    // the result must still be bit-identical.
    let parallel_sharded = engine
        .count(&query)
        .trials(6)
        .seed(42)
        .sharded(4)
        .estimate()
        .unwrap();
    assert_eq!(parallel_sharded.per_trial, serial.per_trial);
}

#[test]
fn zero_shards_is_a_typed_error() {
    let graph = demo_graph();
    let engine = Engine::new(&graph);
    let query = catalog::triangle();
    assert_eq!(
        engine.count(&query).sharded(0).run().unwrap_err(),
        SgcError::ZeroShards
    );
    assert_eq!(
        engine.count(&query).sharded(0).estimate().unwrap_err(),
        SgcError::ZeroShards
    );
}

#[test]
fn shard_load_metrics_cover_the_work() {
    let degrees: Vec<f64> = power_law_degrees(300, 1.6)
        .iter()
        .map(|d| d * 2.0)
        .collect();
    let graph = chung_lu(&degrees, 11);
    let engine = Engine::new(&graph);
    let query = catalog::glet1();
    let coloring = Coloring::random(graph.num_vertices(), query.num_nodes(), 2);
    let res = engine
        .count(&query)
        .coloring(&coloring)
        .sharded(4)
        .run()
        .unwrap();
    let shards = res.metrics.shards.expect("sharded metrics present");
    // Every projection operation is executed by exactly one shard.
    assert_eq!(
        shards.ops_per_shard.iter().sum::<u64>(),
        res.metrics.total_ops
    );
    assert!(shards.max_ops() > 0);
    assert!(shards.imbalance() >= 1.0);
    // Exchange volume: one round per block, entries flowed through it.
    assert!(shards.exchange_rounds > 0);
    assert!(shards.total_entries_exchanged() > 0);
}

/// The determinism matrix, runtime axis: one seed must yield bit-identical
/// estimates across shard counts {1, 2, 4} × execution style (batch vs
/// solo), all agreeing with the serial solo baseline.
#[test]
fn determinism_matrix_shards_by_batch_vs_solo() {
    let degrees: Vec<f64> = power_law_degrees(150, 1.7)
        .iter()
        .map(|d| d * 2.0)
        .collect();
    let graph = chung_lu(&degrees, 31);
    let engine = Engine::new(&graph);
    let queries = [catalog::triangle(), catalog::glet1(), catalog::dros()];
    let baselines: Vec<_> = queries
        .iter()
        .map(|q| {
            engine
                .count(q)
                .trials(4)
                .seed(71)
                .parallel(false)
                .estimate()
                .unwrap()
        })
        .collect();
    // Batch, unsharded.
    let batch = engine
        .count_batch(
            &queries
                .iter()
                .map(|q| engine.count(q).trials(4).seed(71).parallel(false))
                .collect::<Vec<_>>(),
        )
        .unwrap();
    for (baseline, estimate) in baselines.iter().zip(&batch.estimates) {
        assert_eq!(estimate.per_trial, baseline.per_trial, "unsharded batch");
    }
    for shards in [1usize, 2, 4] {
        // Solo, sharded.
        for (q, baseline) in queries.iter().zip(&baselines) {
            let sharded = engine
                .count(q)
                .trials(4)
                .seed(71)
                .parallel(false)
                .sharded(shards)
                .estimate()
                .unwrap();
            assert_eq!(
                sharded.per_trial, baseline.per_trial,
                "solo at {shards} shards"
            );
            assert_eq!(
                sharded.estimated_matches.to_bits(),
                baseline.estimated_matches.to_bits(),
                "solo at {shards} shards"
            );
        }
        // Batch, sharded: every trial step shares one exchange round.
        let batch = engine
            .count_batch(
                &queries
                    .iter()
                    .map(|q| {
                        engine
                            .count(q)
                            .trials(4)
                            .seed(71)
                            .parallel(false)
                            .sharded(shards)
                    })
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        for (baseline, estimate) in baselines.iter().zip(&batch.estimates) {
            assert_eq!(
                estimate.per_trial, baseline.per_trial,
                "batch at {shards} shards"
            );
            assert_eq!(
                estimate.estimated_matches.to_bits(),
                baseline.estimated_matches.to_bits(),
                "batch at {shards} shards"
            );
        }
    }
}
